//! The process: module loader + interpreter on a virtual clock.
//!
//! A [`Process`] models one language runtime inside one container. It lives
//! across invocations (warm starts reuse its module cache), pays module
//! initialization costs on the virtual clock, executes handler call trees,
//! and reports every time advance to an attached
//! [`ExecutionObserver`].

use std::sync::Arc;

use slimstart_appmodel::function::{Stmt, StmtKind};
use slimstart_appmodel::{Application, FunctionId, HandlerId, ModuleId};
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::{SimDuration, SimTime};

use crate::fault::RuntimeFault;
use crate::loader::LoaderPlan;
use crate::observer::{AdvanceContext, ExecutionObserver};
use crate::snapshot::{SnapLoad, Snapshot};
use crate::stack::{CallStack, FrameKind};
use crate::zygote::ZygoteImage;

/// Maximum call depth before the interpreter aborts (guards against model
/// bugs; real applications in the catalog stay far below this).
const RECURSION_LIMIT: usize = 256;

/// One module load performed by this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadEvent {
    /// Which module loaded.
    pub module: ModuleId,
    /// When the load finished.
    pub at: SimTime,
    /// The module's own top-level cost actually paid (scaled), excluding
    /// the cost of modules it imported.
    pub self_cost: SimDuration,
    /// Whether the load happened during [`Process::cold_start`] (true) or
    /// was a deferred first-use load during execution (false).
    pub during_init: bool,
}

/// The result of one invocation on a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationOutcome {
    /// Wall time of the handler execution, including deferred library loads
    /// and profiling overhead.
    pub exec_time: SimDuration,
    /// Portion of `exec_time` spent in deferred (first-use) module loading.
    pub deferred_load_time: SimDuration,
    /// Peak resident memory observed so far in this process, KiB.
    pub peak_mem_kb: u64,
}

/// A language runtime instance executing one application.
pub struct Process {
    app: Arc<Application>,
    plan: Arc<LoaderPlan>,
    time_scale: f64,
    clock: SimTime,
    stack: CallStack,
    /// Loaded-module bitset (one bit per module id), so the loader's
    /// closure fast path is a handful of word operations.
    loaded: Vec<u64>,
    loaded_count: usize,
    /// Modules the handler actually used post-load (one bit per module
    /// id): set on every function entry and explicit touch, cumulative
    /// across invocations. This is the raw material of the REAP-style
    /// working set the platform refines snapshots with.
    touched: Vec<u64>,
    /// Modules a lazy (working-set) restore skipped: still in the
    /// snapshot, not in this process's module cache. A first-use load of
    /// one of these is a working-set fault, counted in `faulted_loads`.
    lazy_omitted: Vec<u64>,
    faulted_loads: u64,
    load_events: Vec<LoadEvent>,
    mem_kb: u64,
    peak_mem_kb: u64,
    observer: Option<Box<dyn ExecutionObserver>>,
    in_cold_start: bool,
    /// The zygote this process forked from, if any: modules resident in
    /// the image load at its flat fork cost instead of their init cost,
    /// and lazy restores replay in its prefetch order.
    zygote: Option<Arc<ZygoteImage>>,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("app", &self.app.name())
            .field("clock", &self.clock)
            .field("loaded", &self.loaded_count)
            .field("mem_kb", &self.mem_kb)
            .field("observed", &self.observer.is_some())
            .field("forked", &self.zygote.is_some())
            .finish()
    }
}

impl Process {
    /// Creates a fresh process for `app`, building a private
    /// [`LoaderPlan`]. Callers that spin up many processes for the same
    /// application (the platform's container pool) should build the plan
    /// once and use [`Process::with_plan`] instead.
    ///
    /// `time_scale` multiplies every paid duration, modeling run-to-run
    /// performance jitter of real containers (1.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not finite and positive.
    pub fn new(app: Arc<Application>, time_scale: f64) -> Self {
        let plan = Arc::new(LoaderPlan::build(&app));
        Process::with_plan(app, plan, time_scale)
    }

    /// Creates a fresh process sharing a prebuilt loader plan.
    ///
    /// The plan must have been built from this exact application state
    /// (same modules, same `stripped` flags).
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not finite and positive.
    pub fn with_plan(app: Arc<Application>, plan: Arc<LoaderPlan>, time_scale: f64) -> Self {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be finite and positive"
        );
        let words = app.modules().len().div_ceil(64);
        Process {
            app,
            plan,
            time_scale,
            clock: SimTime::ZERO,
            stack: CallStack::new(),
            loaded: vec![0u64; words],
            loaded_count: 0,
            touched: vec![0u64; words],
            lazy_omitted: vec![0u64; words],
            faulted_loads: 0,
            load_events: Vec::new(),
            mem_kb: 0,
            peak_mem_kb: 0,
            observer: None,
            in_cold_start: false,
            zygote: None,
        }
    }

    /// Attaches the zygote image this process forks from, counting one
    /// fork on the image's shared counters. Must happen before any load —
    /// forking an already-running process is not a thing.
    ///
    /// # Panics
    ///
    /// Debug-asserts that nothing has loaded yet.
    pub fn set_zygote(&mut self, image: Arc<ZygoteImage>) {
        debug_assert!(
            self.loaded_count == 0 && self.load_events.is_empty(),
            "zygote fork of a non-fresh process"
        );
        image.note_fork();
        self.zygote = Some(image);
    }

    /// The zygote image this process forked from, if any.
    pub fn zygote(&self) -> Option<&Arc<ZygoteImage>> {
        self.zygote.as_ref()
    }

    /// The loader plan this process shares.
    pub fn plan(&self) -> &Arc<LoaderPlan> {
        &self.plan
    }

    /// Attaches a profiler/observer. Replaces any existing attachment.
    pub fn attach_observer(&mut self, observer: Box<dyn ExecutionObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the observer, if any.
    pub fn detach_observer(&mut self) -> Option<Box<dyn ExecutionObserver>> {
        self.observer.take()
    }

    /// Whether an observer is attached.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// The application this process executes.
    pub fn app(&self) -> &Arc<Application> {
        &self.app
    }

    /// Current virtual time of this process.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Current resident memory (loaded modules + observer buffers), KiB.
    pub fn mem_kb(&self) -> u64 {
        self.mem_kb + self.observer.as_ref().map_or(0, |o| o.extra_mem_kb())
    }

    /// Peak resident memory observed, KiB.
    pub fn peak_mem_kb(&self) -> u64 {
        self.peak_mem_kb
    }

    /// Whether `module` has been loaded.
    #[inline]
    pub fn is_loaded(&self, module: ModuleId) -> bool {
        self.loaded[module.index() / 64] & (1u64 << (module.index() % 64)) != 0
    }

    #[inline]
    fn mark_loaded(&mut self, module: ModuleId) {
        let (word, bit) = (module.index() / 64, 1u64 << (module.index() % 64));
        self.loaded[word] |= bit;
        self.loaded_count += 1;
        if self.lazy_omitted[word] & bit != 0 {
            // First use of a module a working-set restore left out: the
            // load cost being paid right now is the fault the lazy
            // restore deferred.
            self.lazy_omitted[word] &= !bit;
            self.faulted_loads += 1;
        }
    }

    #[inline]
    fn mark_touched(&mut self, module: ModuleId) {
        self.touched[module.index() / 64] |= 1u64 << (module.index() % 64);
    }

    /// Bitset of modules the handler has used post-load so far (function
    /// entries and explicit touches), cumulative across invocations.
    pub fn touched(&self) -> &[u64] {
        &self.touched
    }

    /// Takes (and resets) the count of working-set faults paid since the
    /// last call: first-use loads of modules a lazy restore omitted.
    pub fn take_faulted_loads(&mut self) -> u64 {
        std::mem::take(&mut self.faulted_loads)
    }

    /// The modules this process has touched during handler execution,
    /// intersected with `snapshot`'s loaded set and closed under package
    /// ancestry — what a REAP-style restore of `snapshot` must replay
    /// eagerly for this process's traffic. Ancestor chains are full
    /// dotted-prefix lists, so one closure pass over the intersection is
    /// already transitively closed.
    pub fn working_set_for(&self, snapshot: &Snapshot) -> Vec<u64> {
        debug_assert_eq!(self.touched.len(), snapshot.loaded.len());
        let mut working: Vec<u64> = self
            .touched
            .iter()
            .zip(snapshot.loaded.iter())
            .map(|(t, l)| t & l)
            .collect();
        for word in 0..working.len() {
            let mut bits = working[word];
            while bits != 0 {
                let index = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for &a in self.plan.ancestors(ModuleId::from_index(index)) {
                    let (w, b) = (a.index() / 64, 1u64 << (a.index() % 64));
                    if snapshot.loaded[w] & b != 0 {
                        working[w] |= b;
                    }
                }
            }
        }
        working
    }

    /// All loads performed so far, in order.
    pub fn load_events(&self) -> &[LoadEvent] {
        &self.load_events
    }

    /// Total module-init time paid during cold start (the hierarchical
    /// breakdown's ground truth, Eq. 1).
    pub fn init_time_paid(&self) -> SimDuration {
        self.load_events
            .iter()
            .filter(|e| e.during_init)
            .map(|e| e.self_cost)
            .sum()
    }

    /// Performs the cold-start load of the handler module graph and returns
    /// the initialization latency (library-loading portion of a cold start).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeFault::StrippedHandlerModule`] if the entry module
    /// was removed by a static optimizer.
    pub fn cold_start(&mut self, root: ModuleId) -> Result<SimDuration, RuntimeFault> {
        if self.app.module(root).stripped() {
            return Err(RuntimeFault::StrippedHandlerModule { module: root });
        }
        let start = self.clock;
        self.in_cold_start = true;
        let app = Arc::clone(&self.app);
        self.load_with_parents(&app, root);
        self.in_cold_start = false;
        self.bump_peak();
        Ok(self.clock.since(start))
    }

    /// Captures the outcome of the cold start this process just performed
    /// as a [`Snapshot`]: load order with raw (unscaled) per-module
    /// charges, plus the resulting module-cache bitset.
    ///
    /// Only meaningful immediately after a successful
    /// [`Process::cold_start`] on an unobserved process — an observer
    /// perturbs clocks in ways a restore must not replay silently, and
    /// post-init deferred loads are not part of a cold start.
    ///
    /// # Panics
    ///
    /// Debug-asserts that no observer is attached and that every load so
    /// far happened during init.
    pub fn capture_snapshot(&self) -> Snapshot {
        debug_assert!(
            self.observer.is_none(),
            "snapshots must not capture observed cold starts"
        );
        debug_assert!(
            self.load_events.iter().all(|e| e.during_init),
            "snapshot capture after deferred loads"
        );
        let loads: Box<[SnapLoad]> = self
            .load_events
            .iter()
            .map(|e| {
                let module = self.app.module(e.module);
                SnapLoad {
                    module: e.module,
                    init_cost: module.init_cost(),
                    mem_kb: module.mem_kb(),
                }
            })
            .collect();
        let nominal_init = loads.iter().map(|l| l.init_cost).sum();
        Snapshot {
            loads,
            loaded: self.loaded.clone().into_boxed_slice(),
            loaded_count: self.loaded_count,
            nominal_init,
            // Unrefined: no invocation has recorded a working set yet, so
            // restores replay the full stream until the store refines it.
            working: None,
        }
    }

    /// Replays a captured cold start onto this fresh process and returns
    /// the initialization latency, exactly as [`Process::cold_start`]
    /// would have: each stored raw charge is scaled through this process's
    /// own `time_scale` with the same per-module rounding the loader uses,
    /// so clocks, load events, memory, and the module cache come out
    /// byte-identical to a real replay — in O(modules) straight-line work.
    ///
    /// # Panics
    ///
    /// Debug-asserts that this process is fresh (nothing loaded) and
    /// unobserved.
    pub fn restore_snapshot(&mut self, snapshot: &Snapshot) -> SimDuration {
        debug_assert!(
            self.loaded_count == 0 && self.load_events.is_empty(),
            "snapshot restore into a non-fresh process"
        );
        debug_assert!(
            self.observer.is_none(),
            "snapshot restore into an observed process"
        );
        debug_assert_eq!(
            self.loaded.len(),
            snapshot.loaded.len(),
            "snapshot from a different application shape"
        );
        let start = self.clock;
        let scale = self.time_scale;
        // `mul_f64(1.0)` is exact identity for any µs count below 2^53
        // (~285 years), so the unjittered common case can skip the
        // float round-trip without perturbing a single byte.
        let unscaled = scale == 1.0;
        let mut clock = self.clock;
        let mut mem_kb = self.mem_kb;
        let zygote = self.zygote.clone();
        self.load_events.extend(snapshot.loads.iter().map(|load| {
            // Snapshots record nominal charges; a restore under a zygote
            // must substitute the fork cost for resident modules exactly
            // as the real forked cold start it replays did.
            let raw = match &zygote {
                Some(z) => z.effective_cost(load.module, load.init_cost),
                None => load.init_cost,
            };
            // Per-load scaling, not a scaled sum: mul_f64 rounds per call
            // and the replay must round exactly like the loader did.
            let scaled = if unscaled { raw } else { raw.mul_f64(scale) };
            clock += scaled;
            mem_kb += load.mem_kb;
            LoadEvent {
                module: load.module,
                at: clock,
                self_cost: scaled,
                during_init: true,
            }
        }));
        self.clock = clock;
        self.mem_kb = mem_kb;
        self.loaded.copy_from_slice(&snapshot.loaded);
        self.loaded_count = snapshot.loaded_count;
        self.bump_peak();
        self.clock.since(start)
    }

    /// REAP-style restore: replays only the snapshot's recorded working
    /// set eagerly (same per-load `time_scale` rounding as
    /// [`Process::restore_snapshot`]) and leaves the remaining modules
    /// unloaded, to be faulted in by the ordinary first-use deferred-load
    /// path at their real init cost. Unrefined snapshots (no working set
    /// recorded yet) fall back to the full stream.
    ///
    /// With a full working set this is byte-identical to
    /// [`Process::restore_snapshot`] — the retained differential oracle.
    ///
    /// When this process forked from a zygote the replay set additionally
    /// includes every zygote-resident module in the snapshot (the fork
    /// maps them in regardless, at fork cost) and is replayed in
    /// **prefetch order** — the image's hotness ranking, hottest first,
    /// capture order breaking ties — so early invocations stop faulting
    /// sooner. Without a zygote the capture-order path below is untouched.
    ///
    /// # Panics
    ///
    /// Debug-asserts that this process is fresh (nothing loaded) and
    /// unobserved.
    pub fn restore_snapshot_lazy(&mut self, snapshot: &Snapshot) -> SimDuration {
        let Some(working) = snapshot.working.as_deref() else {
            return self.restore_snapshot(snapshot);
        };
        debug_assert!(
            self.loaded_count == 0 && self.load_events.is_empty(),
            "snapshot restore into a non-fresh process"
        );
        debug_assert!(
            self.observer.is_none(),
            "snapshot restore into an observed process"
        );
        debug_assert_eq!(
            self.loaded.len(),
            snapshot.loaded.len(),
            "snapshot from a different application shape"
        );
        if let Some(zygote) = self.zygote.clone() {
            return self.restore_lazy_forked(snapshot, working, &zygote);
        }
        let start = self.clock;
        let scale = self.time_scale;
        let unscaled = scale == 1.0;
        let mut clock = self.clock;
        let mut mem_kb = self.mem_kb;
        let mut loaded_count = 0usize;
        for load in snapshot.loads.iter() {
            let (word, bit) = (load.module.index() / 64, 1u64 << (load.module.index() % 64));
            if working[word] & bit != 0 {
                let scaled = if unscaled {
                    load.init_cost
                } else {
                    load.init_cost.mul_f64(scale)
                };
                clock += scaled;
                mem_kb += load.mem_kb;
                loaded_count += 1;
                self.load_events.push(LoadEvent {
                    module: load.module,
                    at: clock,
                    self_cost: scaled,
                    during_init: true,
                });
            } else {
                self.lazy_omitted[word] |= bit;
            }
        }
        self.clock = clock;
        self.mem_kb = mem_kb;
        self.loaded.copy_from_slice(working);
        self.loaded_count = loaded_count;
        self.bump_peak();
        self.clock.since(start)
    }

    /// The zygote-forked arm of [`Process::restore_snapshot_lazy`]:
    /// replays `working ∪ (resident ∩ snapshot.loads)` sorted by the
    /// image's prefetch rank (capture position breaks ties, and unranked
    /// modules sort after every ranked one), charging resident modules
    /// the fork cost. Everything else is omitted for first-use faulting,
    /// exactly like the unforked lazy path.
    fn restore_lazy_forked(
        &mut self,
        snapshot: &Snapshot,
        working: &[u64],
        zygote: &ZygoteImage,
    ) -> SimDuration {
        let start = self.clock;
        let scale = self.time_scale;
        let unscaled = scale == 1.0;
        // (prefetch rank, capture position) per replayed load: sorting the
        // pairs is the prefetch order, and position keeps it deterministic.
        let mut replay: Vec<(u32, usize)> = Vec::with_capacity(snapshot.loads.len());
        for (position, load) in snapshot.loads.iter().enumerate() {
            let index = load.module.index();
            let (word, bit) = (index / 64, 1u64 << (index % 64));
            if working[word] & bit != 0 || zygote.is_resident(load.module) {
                replay.push((zygote.rank(load.module), position));
            } else {
                self.lazy_omitted[word] |= bit;
            }
        }
        replay.sort_unstable();
        let mut clock = self.clock;
        let mut mem_kb = self.mem_kb;
        for &(_, position) in &replay {
            let load = &snapshot.loads[position];
            let raw = zygote.effective_cost(load.module, load.init_cost);
            let scaled = if unscaled { raw } else { raw.mul_f64(scale) };
            clock += scaled;
            mem_kb += load.mem_kb;
            self.load_events.push(LoadEvent {
                module: load.module,
                at: clock,
                self_cost: scaled,
                during_init: true,
            });
            let index = load.module.index();
            self.loaded[index / 64] |= 1u64 << (index % 64);
        }
        self.clock = clock;
        self.mem_kb = mem_kb;
        self.loaded_count = replay.len();
        self.bump_peak();
        self.clock.since(start)
    }

    /// Executes one invocation of `handler`, using `rng` for the
    /// application's data-dependent branches.
    ///
    /// Deferred imports reached for the first time are loaded here and their
    /// cost lands in [`InvocationOutcome::exec_time`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeFault`] if the handler is unknown or execution
    /// reaches a stripped module.
    pub fn invoke(
        &mut self,
        handler: HandlerId,
        rng: &mut SimRng,
    ) -> Result<InvocationOutcome, RuntimeFault> {
        if handler.index() >= self.app.handlers().len() {
            return Err(RuntimeFault::UnknownHandler { handler });
        }
        let app = Arc::clone(&self.app);
        let function = app.handler(handler).function();
        let start = self.clock;
        let mut deferred = SimDuration::ZERO;

        // The handler's own module may itself be deferred-loaded if the
        // platform skipped cold_start (tests use this).
        let handler_module = app.function(function).module();
        if !self.is_loaded(handler_module) {
            let t0 = self.clock;
            if app.module(handler_module).stripped() {
                return Err(RuntimeFault::StrippedHandlerModule {
                    module: handler_module,
                });
            }
            self.load_with_parents(&app, handler_module);
            deferred += self.clock.since(t0);
        }

        self.exec_function(&app, function, rng, 0, &mut deferred)?;

        if let Some(observer) = self.observer.as_mut() {
            let overhead = observer.on_invocation_end(&app).mul_f64(self.time_scale);
            self.clock += overhead;
        }
        self.bump_peak();
        Ok(InvocationOutcome {
            exec_time: self.clock.since(start),
            deferred_load_time: deferred,
            peak_mem_kb: self.peak_mem_kb,
        })
    }

    // ---------------------------------------------------------------- internals

    /// Advances the clock by `d` (scaled), reporting to the observer and
    /// charging its overhead.
    fn advance(&mut self, d: SimDuration) {
        let scaled = d.mul_f64(self.time_scale);
        let from = self.clock;
        let to = from + scaled;
        let overhead = match self.observer.as_mut() {
            Some(observer) => observer.on_advance(AdvanceContext {
                app: &self.app,
                stack: &self.stack,
                from,
                to,
            }),
            None => SimDuration::ZERO,
        };
        self.clock = to + overhead;
    }

    fn bump_peak(&mut self) {
        let now = self.mem_kb();
        if now > self.peak_mem_kb {
            self.peak_mem_kb = now;
        }
    }

    /// Loads `module` the Python way: ancestors first, then the module.
    ///
    /// Fast path: when the plan's memoized transitive closure shows that
    /// everything `module` needs is already loaded, the recursive walk
    /// collapses to a single shallow load of `module` itself. The walk and
    /// the shallow load are observably identical in that case — the import
    /// loop would only touch line numbers between advances, which no
    /// sampler can see — so load events, timestamps and stack shapes are
    /// byte-for-byte unchanged.
    fn load_with_parents(&mut self, app: &Arc<Application>, module: ModuleId) {
        let plan = Arc::clone(&self.plan);
        if plan
            .closure(app, module)
            .only_missing_is(&self.loaded, module)
        {
            self.load_single(app, module, true);
            return;
        }
        for &id in plan.ancestors(module) {
            if !self.is_loaded(id) && !app.module(id).stripped() {
                self.load_single(app, id, false);
            }
        }
    }

    /// Loads exactly one module: runs its global imports (unless `shallow`
    /// proved them all loaded), then its top level.
    fn load_single(&mut self, app: &Arc<Application>, module: ModuleId, shallow: bool) {
        debug_assert!(!self.is_loaded(module), "double load of {module}");
        // Mark first (Python registers in sys.modules before executing).
        self.mark_loaded(module);
        self.stack.push(FrameKind::ModuleInit(module), 1);

        if !shallow {
            for decl in app.imports_of(module) {
                if !decl.mode.is_global() {
                    continue;
                }
                if app.module(decl.target).stripped() {
                    continue; // the static optimizer removed this import
                }
                self.stack.set_line(decl.line);
                if !self.is_loaded(decl.target) {
                    self.load_with_parents(app, decl.target);
                }
            }
        }

        // Execute the module's own top level — or, when the zygote this
        // process forked from already holds the module initialized, just
        // acquire it at the flat fork cost.
        let before = self.clock;
        self.stack.set_line(1);
        let nominal = app.module(module).init_cost();
        let raw = match &self.zygote {
            Some(z) => z.effective_cost(module, nominal),
            None => nominal,
        };
        self.advance(raw);
        let self_cost = self.clock.since(before);

        self.stack.pop();
        self.mem_kb += app.module(module).mem_kb();
        self.bump_peak();
        self.load_events.push(LoadEvent {
            module,
            at: self.clock,
            self_cost,
            during_init: self.in_cold_start,
        });
    }

    fn exec_function(
        &mut self,
        app: &Arc<Application>,
        function: FunctionId,
        rng: &mut SimRng,
        depth: usize,
        deferred: &mut SimDuration,
    ) -> Result<(), RuntimeFault> {
        if depth >= RECURSION_LIMIT {
            return Err(RuntimeFault::RecursionLimit { function });
        }
        let f = app.function(function);
        self.mark_touched(f.module());
        self.stack.push(FrameKind::Call(function), f.line());
        let result = self.exec_stmts(app, f.body(), rng, depth, deferred);
        self.stack.pop();
        result
    }

    fn exec_stmts(
        &mut self,
        app: &Arc<Application>,
        stmts: &[Stmt],
        rng: &mut SimRng,
        depth: usize,
        deferred: &mut SimDuration,
    ) -> Result<(), RuntimeFault> {
        for stmt in stmts {
            self.stack.set_line(stmt.line);
            match &stmt.kind {
                StmtKind::Work(d) => self.advance(*d),
                StmtKind::Call(site) => {
                    let callee_module = app.function(site.target).module();
                    if !self.is_loaded(callee_module) {
                        if app.module(callee_module).stripped() {
                            return Err(RuntimeFault::StrippedModuleCall {
                                module: callee_module,
                                function: site.target,
                            });
                        }
                        // First use of a deferred import: load now.
                        let t0 = self.clock;
                        self.load_with_parents(app, callee_module);
                        *deferred += self.clock.since(t0);
                    }
                    self.exec_function(app, site.target, rng, depth + 1, deferred)?;
                }
                StmtKind::Touch(module) => {
                    if !self.is_loaded(*module) {
                        if app.module(*module).stripped() {
                            return Err(RuntimeFault::StrippedModuleTouch { module: *module });
                        }
                        let t0 = self.clock;
                        self.load_with_parents(app, *module);
                        *deferred += self.clock.since(t0);
                    }
                    self.mark_touched(*module);
                }
                StmtKind::Branch { probability, body } => {
                    if rng.chance(*probability) {
                        self.exec_stmts(app, body, rng, depth, deferred)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zygote::{ZygoteCounters, ZygoteImage};
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::imports::ImportMode;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler.py -> lib (root imports hot + cold subpackages); handler
    /// calls into hot only; cold has a function never called.
    fn build_app(defer_cold: bool) -> (Arc<Application>, ModuleId, HandlerId) {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 128);
        let root = b.add_library_module("lib", ms(2), 256, false, lib);
        let hot = b.add_library_module("lib.hot", ms(10), 1_000, false, lib);
        let cold = b.add_library_module("lib.cold", ms(50), 5_000, false, lib);
        let cold_leaf = b.add_library_module("lib.cold.leaf", ms(25), 2_000, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 2, ImportMode::Global).unwrap();
        b.add_import(
            root,
            cold,
            3,
            if defer_cold {
                ImportMode::Deferred
            } else {
                ImportMode::Global
            },
        )
        .unwrap();
        b.add_import(cold, cold_leaf, 2, ImportMode::Global)
            .unwrap();
        let f_hot = b.add_function(
            "work",
            hot,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(4)),
            }],
        );
        let f_cold = b.add_function(
            "rare",
            cold,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let f_main = b.add_function(
            "main",
            h,
            4,
            vec![
                Stmt {
                    line: 5,
                    kind: StmtKind::call(f_hot),
                },
                Stmt {
                    line: 6,
                    kind: StmtKind::Branch {
                        probability: 0.0,
                        body: vec![Stmt {
                            line: 7,
                            kind: StmtKind::call(f_cold),
                        }],
                    },
                },
            ],
        );
        let handler = b.add_handler("main", f_main);
        let app = Arc::new(b.finish().unwrap());
        let hm = app.module_by_name("handler").unwrap();
        (app, hm, handler)
    }

    #[test]
    fn eager_cold_start_pays_everything() {
        let (app, root, _) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        let init = p.cold_start(root).unwrap();
        // 1 + 2 + 10 + 50 + 25 ms.
        assert_eq!(init, ms(88));
        assert_eq!(p.init_time_paid(), ms(88));
        assert_eq!(p.mem_kb(), 128 + 256 + 1_000 + 5_000 + 2_000);
    }

    #[test]
    fn deferred_import_skips_cold_subtree() {
        let (app, root, _) = build_app(true);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        let init = p.cold_start(root).unwrap();
        assert_eq!(init, ms(13)); // 1 + 2 + 10
        let cold = app.module_by_name("lib.cold").unwrap();
        assert!(!p.is_loaded(cold));
        assert_eq!(p.mem_kb(), 128 + 256 + 1_000);
    }

    #[test]
    fn invocation_executes_work() {
        let (app, root, h) = build_app(true);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.cold_start(root).unwrap();
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out.exec_time, ms(4)); // hot work only; branch never fires
        assert_eq!(out.deferred_load_time, SimDuration::ZERO);
    }

    #[test]
    fn first_use_triggers_deferred_load_with_parents() {
        let (app, root, _) = build_app(true);
        // Force the rare branch by invoking the cold function directly via a
        // dedicated app: simpler — raise probability to 1 by rebuilding.
        let mut b = AppBuilder::new("t2");
        let lib = b.add_library("lib");
        let hm = b.add_app_module("handler", ms(1), 0);
        let lroot = b.add_library_module("lib", ms(2), 0, false, lib);
        let cold = b.add_library_module("lib.cold", ms(50), 0, false, lib);
        b.add_import(hm, lroot, 2, ImportMode::Global).unwrap();
        b.add_import(lroot, cold, 2, ImportMode::Deferred).unwrap();
        let f_cold = b.add_function(
            "rare",
            cold,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let f_main = b.add_function(
            "main",
            hm,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_cold),
            }],
        );
        let h2 = b.add_handler("main", f_main);
        let app2 = Arc::new(b.finish().unwrap());
        let hm2 = app2.module_by_name("handler").unwrap();
        let mut p = Process::new(Arc::clone(&app2), 1.0);
        let init = p.cold_start(hm2).unwrap();
        assert_eq!(init, ms(3)); // handler + lib root only
        let out = p.invoke(h2, &mut SimRng::seed_from(1)).unwrap();
        // Deferred load of lib.cold (50) + work (1).
        assert_eq!(out.exec_time, ms(51));
        assert_eq!(out.deferred_load_time, ms(50));
        assert!(p.is_loaded(app2.module_by_name("lib.cold").unwrap()));

        // keep the original app alive so the first part of this test is
        // meaningful
        let _ = (app, root);
    }

    #[test]
    fn warm_invocations_pay_no_load() {
        let (app, root, h) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.cold_start(root).unwrap();
        let first = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        let second = p.invoke(h, &mut SimRng::seed_from(2)).unwrap();
        assert_eq!(first.exec_time, second.exec_time);
        assert_eq!(p.load_events().len(), 5);
    }

    #[test]
    fn time_scale_inflates_latency() {
        let (app, root, _) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 2.0);
        let init = p.cold_start(root).unwrap();
        assert_eq!(init, ms(176));
    }

    #[test]
    #[should_panic(expected = "time_scale")]
    fn rejects_bad_time_scale() {
        let (app, _, _) = build_app(false);
        Process::new(app, 0.0);
    }

    #[test]
    fn stripped_module_call_faults() {
        let (app, root, h) = build_app(false);
        let mut app2 = (*app).clone();
        let hot = app2.module_by_name("lib.hot").unwrap();
        app2.module_mut(hot).set_stripped(true);
        let app2 = Arc::new(app2);
        let mut p = Process::new(Arc::clone(&app2), 1.0);
        p.cold_start(root).unwrap();
        let err = p.invoke(h, &mut SimRng::seed_from(1)).unwrap_err();
        assert!(matches!(err, RuntimeFault::StrippedModuleCall { .. }));
    }

    #[test]
    fn stripped_handler_module_faults_cold_start() {
        let (app, root, _) = build_app(false);
        let mut app2 = (*app).clone();
        app2.module_mut(root).set_stripped(true);
        let app2 = Arc::new(app2);
        let mut p = Process::new(app2, 1.0);
        assert!(matches!(
            p.cold_start(root),
            Err(RuntimeFault::StrippedHandlerModule { .. })
        ));
    }

    #[test]
    fn unknown_handler_faults() {
        let (app, _, _) = build_app(false);
        let mut p = Process::new(app, 1.0);
        let err = p
            .invoke(HandlerId::from_index(99), &mut SimRng::seed_from(1))
            .unwrap_err();
        assert!(matches!(err, RuntimeFault::UnknownHandler { .. }));
    }

    #[test]
    fn invoke_without_cold_start_self_loads() {
        let (app, _, h) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        // All loading happens as "deferred" inside the invocation.
        assert_eq!(out.deferred_load_time, ms(88));
        assert_eq!(p.init_time_paid(), SimDuration::ZERO);
    }

    #[test]
    fn load_events_record_self_costs() {
        let (app, root, _) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.cold_start(root).unwrap();
        let total: SimDuration = p.load_events().iter().map(|e| e.self_cost).sum();
        assert_eq!(total, ms(88));
        assert!(p.load_events().iter().all(|e| e.during_init));
        // Load order: dependencies before importers, handler last.
        let names: Vec<&str> = p
            .load_events()
            .iter()
            .map(|e| app.module(e.module).name())
            .collect();
        assert_eq!(names.last(), Some(&"handler"));
    }

    #[test]
    fn observer_overhead_is_charged() {
        struct FixedOverhead;
        impl ExecutionObserver for FixedOverhead {
            fn on_advance(&mut self, _ctx: AdvanceContext<'_>) -> SimDuration {
                SimDuration::from_micros(100)
            }
            fn on_invocation_end(&mut self, _app: &Application) -> SimDuration {
                SimDuration::from_millis(1)
            }
            fn extra_mem_kb(&self) -> u64 {
                512
            }
        }
        let (app, root, h) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.attach_observer(Box::new(FixedOverhead));
        let init = p.cold_start(root).unwrap();
        // 5 advances during load, each +100us.
        assert_eq!(init, ms(88) + SimDuration::from_micros(500));
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        // 1 work advance (+100us) + invocation-end flush (1ms).
        assert_eq!(out.exec_time, ms(4) + SimDuration::from_micros(100) + ms(1));
        assert_eq!(p.mem_kb(), 128 + 256 + 1_000 + 5_000 + 2_000 + 512);
        assert!(p.has_observer());
        assert!(p.detach_observer().is_some());
        assert!(!p.has_observer());
    }

    #[test]
    fn shallow_fast_path_is_equivalent_to_walk() {
        // lib.cold is deferred and all of its dependencies load eagerly, so
        // its first use hits the closure fast path (everything but lib.cold
        // itself already loaded) — outcomes must match the full-walk
        // semantics exactly.
        let mut b = AppBuilder::new("t3");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(2), 0, false, lib);
        let hot = b.add_library_module("lib.hot", ms(4), 0, false, lib);
        let cold = b.add_library_module("lib.cold", ms(8), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 2, ImportMode::Global).unwrap();
        b.add_import(root, cold, 3, ImportMode::Deferred).unwrap();
        b.add_import(cold, hot, 2, ImportMode::Global).unwrap();
        let f_cold = b.add_function(
            "rare",
            cold,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let f_main = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_cold),
            }],
        );
        let handler = b.add_handler("main", f_main);
        let app = Arc::new(b.finish().unwrap());
        let hm = app.module_by_name("handler").unwrap();

        let plan = Arc::new(LoaderPlan::build(&app));
        let mut p = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        let init = p.cold_start(hm).unwrap();
        assert_eq!(init, ms(7));
        let out = p.invoke(handler, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out.deferred_load_time, ms(8));
        assert_eq!(out.exec_time, ms(9));
        let names: Vec<&str> = p
            .load_events()
            .iter()
            .map(|e| app.module(e.module).name())
            .collect();
        assert_eq!(names, vec!["lib.hot", "lib", "handler", "lib.cold"]);

        // A fresh process sharing the (now-memoized) plan is identical to
        // one that builds its own.
        let mut shared = Process::with_plan(Arc::clone(&app), plan, 1.0);
        let mut private = Process::new(Arc::clone(&app), 1.0);
        assert_eq!(shared.cold_start(hm), private.cold_start(hm));
        let a = shared.invoke(handler, &mut SimRng::seed_from(1)).unwrap();
        let b = private.invoke(handler, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(shared.load_events(), private.load_events());
    }

    #[test]
    fn snapshot_restore_replays_cold_start_exactly() {
        let (app, root, h) = build_app(true);
        let plan = Arc::new(LoaderPlan::build(&app));
        // Capture from one cold start, restore into fresh processes at the
        // same and at jittered time scales — every observable must match a
        // real replay bit for bit.
        let mut origin = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        origin.cold_start(root).unwrap();
        let snapshot = origin.capture_snapshot();
        for scale in [1.0, 0.5, 1.37, 2.0] {
            let mut replay = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), scale);
            let real = replay.cold_start(root).unwrap();
            let mut restored = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), scale);
            let fast = restored.restore_snapshot(&snapshot);
            assert_eq!(fast, real, "init latency at scale {scale}");
            assert_eq!(restored.clock(), replay.clock());
            assert_eq!(restored.load_events(), replay.load_events());
            assert_eq!(restored.mem_kb(), replay.mem_kb());
            assert_eq!(restored.peak_mem_kb(), replay.peak_mem_kb());
            assert_eq!(restored.init_time_paid(), replay.init_time_paid());
            for i in 0..app.modules().len() {
                let m = ModuleId::from_index(i);
                assert_eq!(restored.is_loaded(m), replay.is_loaded(m));
            }
            // Warm execution after a restore is indistinguishable too,
            // including the first-use deferred load of the cold subtree.
            let a = replay.invoke(h, &mut SimRng::seed_from(9)).unwrap();
            let b = restored.invoke(h, &mut SimRng::seed_from(9)).unwrap();
            assert_eq!(a, b);
            assert_eq!(restored.load_events(), replay.load_events());
        }
    }

    fn bit_of(app: &Application, name: &str) -> (usize, u64) {
        let m = app.module_by_name(name).unwrap();
        (m.index() / 64, 1u64 << (m.index() % 64))
    }

    #[test]
    fn lazy_restore_with_full_working_set_matches_full_restore() {
        let (app, root, h) = build_app(true);
        let plan = Arc::new(LoaderPlan::build(&app));
        let mut origin = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        origin.cold_start(root).unwrap();
        let mut snapshot = origin.capture_snapshot();
        // Full working set: the lazy path must be byte-identical to the
        // full-stream restore — the differential oracle of this PR.
        snapshot.working = Some(snapshot.loaded.clone());
        for scale in [1.0, 0.5, 1.37, 2.0] {
            let mut full = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), scale);
            let full_init = full.restore_snapshot(&snapshot);
            let mut lazy = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), scale);
            let lazy_init = lazy.restore_snapshot_lazy(&snapshot);
            assert_eq!(lazy_init, full_init, "init latency at scale {scale}");
            assert_eq!(lazy.clock(), full.clock());
            assert_eq!(lazy.load_events(), full.load_events());
            assert_eq!(lazy.mem_kb(), full.mem_kb());
            let a = full.invoke(h, &mut SimRng::seed_from(9)).unwrap();
            let b = lazy.invoke(h, &mut SimRng::seed_from(9)).unwrap();
            assert_eq!(a, b);
            assert_eq!(lazy.take_faulted_loads(), 0);
        }
    }

    #[test]
    fn lazy_restore_faults_omitted_modules_on_first_use() {
        // handler -> lib -> lib.cold (all global). The working set leaves
        // lib.cold out; its first use inside the handler pays the real
        // load cost as a deferred load and counts one fault.
        let mut b = AppBuilder::new("ws");
        let lib = b.add_library("lib");
        let hm = b.add_app_module("handler", ms(1), 128);
        let root = b.add_library_module("lib", ms(2), 256, false, lib);
        let cold = b.add_library_module("lib.cold", ms(50), 5_000, false, lib);
        b.add_import(hm, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, cold, 3, ImportMode::Global).unwrap();
        let f_cold = b.add_function(
            "rare",
            cold,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let f_main = b.add_function(
            "main",
            hm,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_cold),
            }],
        );
        let h = b.add_handler("main", f_main);
        let app = Arc::new(b.finish().unwrap());
        let entry = app.module_by_name("handler").unwrap();

        let mut origin = Process::new(Arc::clone(&app), 1.0);
        assert_eq!(origin.cold_start(entry).unwrap(), ms(53));
        let mut snapshot = origin.capture_snapshot();
        let mut working = vec![0u64; snapshot.loaded.len()];
        for name in ["handler", "lib"] {
            let (w, bit) = bit_of(&app, name);
            working[w] |= bit;
        }
        snapshot.working = Some(working.into_boxed_slice());

        let mut p = Process::new(Arc::clone(&app), 1.0);
        let init = p.restore_snapshot_lazy(&snapshot);
        assert_eq!(init, ms(3)); // handler + lib only
        assert_eq!(p.mem_kb(), 128 + 256);
        assert!(!p.is_loaded(app.module_by_name("lib.cold").unwrap()));
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out.deferred_load_time, ms(50));
        assert_eq!(out.exec_time, ms(51));
        assert_eq!(p.take_faulted_loads(), 1);
        // Once faulted in, the module is warm: no further faults.
        let again = p.invoke(h, &mut SimRng::seed_from(2)).unwrap();
        assert_eq!(again.deferred_load_time, SimDuration::ZERO);
        assert_eq!(p.take_faulted_loads(), 0);
    }

    #[test]
    fn working_set_closes_touched_modules_under_ancestry() {
        let (app, root, h) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.cold_start(root).unwrap();
        let snapshot = p.capture_snapshot();
        p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        // The handler ran work in lib.hot only; closure pulls in lib (its
        // package ancestor) and the handler module, never the cold subtree.
        let working = p.working_set_for(&snapshot);
        for name in ["handler", "lib", "lib.hot"] {
            let (w, bit) = bit_of(&app, name);
            assert!(working[w] & bit != 0, "{name} should be in the working set");
        }
        for name in ["lib.cold", "lib.cold.leaf"] {
            let (w, bit) = bit_of(&app, name);
            assert!(working[w] & bit == 0, "{name} should be omitted");
        }
    }

    #[test]
    fn snapshot_nominal_init_sums_raw_charges() {
        let (app, root, _) = build_app(false);
        let mut p = Process::new(Arc::clone(&app), 3.0);
        p.cold_start(root).unwrap();
        let snapshot = p.capture_snapshot();
        // Raw (unscaled) charges: 1 + 2 + 10 + 50 + 25 ms.
        assert_eq!(snapshot.nominal_init, ms(88));
        assert_eq!(snapshot.loads.len(), 5);
        assert_eq!(snapshot.loaded_count, 5);
    }

    #[test]
    fn branch_probability_one_always_fires() {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function(
            "main",
            m,
            1,
            vec![Stmt {
                line: 2,
                kind: StmtKind::Branch {
                    probability: 1.0,
                    body: vec![Stmt {
                        line: 3,
                        kind: StmtKind::Work(ms(7)),
                    }],
                },
            }],
        );
        let h = b.add_handler("h", f);
        let app = Arc::new(b.finish().unwrap());
        let mut p = Process::new(app, 1.0);
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out.exec_time, ms(7));
    }

    #[test]
    fn recursion_limit_guards() {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        // f calls itself.
        let f_id = FunctionId::from_index(0);
        let f = b.add_function(
            "loopy",
            m,
            1,
            vec![Stmt {
                line: 2,
                kind: StmtKind::call(f_id),
            }],
        );
        let h = b.add_handler("h", f);
        let app = Arc::new(b.finish().unwrap());
        let mut p = Process::new(app, 1.0);
        let err = p.invoke(h, &mut SimRng::seed_from(1)).unwrap_err();
        assert!(matches!(err, RuntimeFault::RecursionLimit { .. }));
    }

    #[test]
    fn zygote_cold_start_acquires_resident_modules_at_fork_cost() {
        let (app, root, h) = build_app(false);
        let counters = Arc::new(ZygoteCounters::default());
        let image = Arc::new(ZygoteImage::for_app(
            &app,
            &["lib.cold", "lib.hot", "lib.cold.leaf"],
            3,
            SimDuration::from_micros(100),
            Arc::clone(&counters),
        ));
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.set_zygote(image);
        let init = p.cold_start(root).unwrap();
        // handler (1ms) + lib (2ms) run their top level; the three resident
        // modules are acquired from the zygote at 100µs each.
        assert_eq!(init, ms(3) + SimDuration::from_micros(300));
        assert_eq!(counters.forks(), 1);
        assert_eq!(counters.forked_loads(), 3);
        // Memory is modeled conservatively: full footprint either way.
        assert_eq!(p.mem_kb(), 128 + 256 + 1_000 + 5_000 + 2_000);
        // Warm execution is untouched by the fork.
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out.exec_time, ms(4));
        assert_eq!(counters.forked_loads(), 3);
    }

    #[test]
    fn zygote_full_restore_matches_forked_cold_start() {
        // Snapshots record nominal charges (captured without a zygote);
        // restoring under a zygote must reproduce a real forked cold start
        // bit for bit at every time scale — the platform's snapshot cache
        // relies on this equivalence.
        let (app, root, h) = build_app(true);
        let plan = Arc::new(LoaderPlan::build(&app));
        let mut origin = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        origin.cold_start(root).unwrap();
        let snapshot = origin.capture_snapshot();
        let image = |app: &Application| {
            Arc::new(ZygoteImage::for_app(
                app,
                &["lib.hot", "lib"],
                2,
                SimDuration::from_micros(100),
                Arc::new(ZygoteCounters::default()),
            ))
        };
        for scale in [1.0, 0.5, 1.37, 2.0] {
            let mut real = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), scale);
            real.set_zygote(image(&app));
            let real_init = real.cold_start(root).unwrap();
            let mut restored = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), scale);
            restored.set_zygote(image(&app));
            let fast = restored.restore_snapshot(&snapshot);
            assert_eq!(fast, real_init, "init latency at scale {scale}");
            assert_eq!(restored.clock(), real.clock());
            assert_eq!(restored.load_events(), real.load_events());
            assert_eq!(restored.mem_kb(), real.mem_kb());
            // The deferred first-use load of the cold subtree behaves the
            // same after either path (lib.cold is not resident: full cost).
            let a = real.invoke(h, &mut SimRng::seed_from(9)).unwrap();
            let b = restored.invoke(h, &mut SimRng::seed_from(9)).unwrap();
            assert_eq!(a, b);
            assert_eq!(restored.load_events(), real.load_events());
        }
    }

    #[test]
    fn zygote_lazy_restore_replays_prefetch_order_and_acquires_resident() {
        let (app, root, h) = build_app(false);
        let mut origin = Process::new(Arc::clone(&app), 1.0);
        origin.cold_start(root).unwrap();
        let mut snapshot = origin.capture_snapshot();
        let mut working = vec![0u64; snapshot.loaded.len()];
        for name in ["handler", "lib"] {
            let (w, bit) = bit_of(&app, name);
            working[w] |= bit;
        }
        snapshot.working = Some(working.into_boxed_slice());

        let counters = Arc::new(ZygoteCounters::default());
        // Node ranking: lib.cold hottest (and resident), then lib, then
        // handler; lib.hot and lib.cold.leaf unranked.
        let image = Arc::new(ZygoteImage::for_app(
            &app,
            &["lib.cold", "lib", "handler"],
            1,
            SimDuration::from_micros(100),
            Arc::clone(&counters),
        ));
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.set_zygote(image);
        let init = p.restore_snapshot_lazy(&snapshot);
        // Replay set = working {handler, lib} ∪ resident {lib.cold},
        // prefetch order (not capture order): lib.cold at fork cost first,
        // then lib and handler at their nominal costs.
        let names: Vec<&str> = p
            .load_events()
            .iter()
            .map(|e| app.module(e.module).name())
            .collect();
        assert_eq!(names, vec!["lib.cold", "lib", "handler"]);
        assert_eq!(init, SimDuration::from_micros(100) + ms(2) + ms(1));
        assert_eq!(counters.forked_loads(), 1);
        assert!(p.is_loaded(app.module_by_name("lib.cold").unwrap()));
        assert!(!p.is_loaded(app.module_by_name("lib.hot").unwrap()));
        assert!(!p.is_loaded(app.module_by_name("lib.cold.leaf").unwrap()));
        assert_eq!(p.mem_kb(), 128 + 256 + 5_000);
        // Omitted modules still fault in at first use: the handler's call
        // into lib.hot (unranked, not resident) pays its full cost.
        let out = p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        assert_eq!(out.deferred_load_time, ms(10));
        assert_eq!(out.exec_time, ms(14));
        assert_eq!(p.take_faulted_loads(), 1);
        let _ = root;
    }
}
