//! The platform: routes invocations, cold-starts containers, records
//! metrics.

use std::sync::Arc;

use slimstart_appmodel::{Application, ModuleId};
use slimstart_pyrt::loader::LoaderPlan;
use slimstart_pyrt::observer::ExecutionObserver;
use slimstart_pyrt::snapshot::{deployment_fingerprint, SnapshotKey, SnapshotStore};
use slimstart_pyrt::zygote::ZygoteImage;
use slimstart_pyrt::RuntimeFault;
use slimstart_simcore::event::EventQueue;
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::{SimDuration, SimTime};

use crate::chaos::ChaosPlan;
use crate::container::Container;
use crate::invocation::{Invocation, InvocationRecord};

/// Builds a fresh observer (profiler attachment) for each new container.
pub type ObserverFactory = Arc<dyn Fn() -> Box<dyn ExecutionObserver> + Send + Sync>;

/// Cap on chaos-injected init crashes charged to one cold start; the
/// platform's retry-with-fresh-sandbox loop gives up (and lets the original
/// attempt through) after this many consecutive crashes so a high fault
/// rate degrades latency instead of livelocking.
const MAX_INIT_CRASHES: u64 = 3;

/// Platform configuration, with AWS-Lambda-like defaults.
#[derive(Clone)]
pub struct PlatformConfig {
    /// Container provisioning cost (scheduling + sandbox creation).
    pub provision_cost: SimDuration,
    /// Language-runtime startup cost (interpreter boot before user code).
    pub runtime_startup_cost: SimDuration,
    /// Idle window after which containers are reclaimed.
    pub keep_alive: SimDuration,
    /// Resident memory of an empty runtime, KiB.
    pub container_base_mem_kb: u64,
    /// Log-normal sigma of per-container speed jitter (0 = no jitter).
    pub jitter_sigma: f64,
    /// Maximum simultaneously provisioned containers.
    pub max_containers: usize,
    /// Profiler attachment installed into every new container, if any.
    pub observer_factory: Option<ObserverFactory>,
    /// Fault-injection schedule; `None` behaves exactly like
    /// [`ChaosPlan::none`] (no draws, no overhead).
    pub chaos: Option<Arc<ChaosPlan>>,
    /// Cold-start snapshot cache shared by this deployment's containers;
    /// `None` replays every cold start through the loader. Restores are
    /// byte-identical to replays, so this is purely a simulation-speed
    /// knob (`SLIMSTART_NO_SNAPSHOT=1` disables the default store).
    pub snapshot_store: Option<Arc<SnapshotStore>>,
    /// Node zygote this deployment's containers fork from, if any: every
    /// cold start attaches the image, so resident modules are acquired at
    /// fork cost and lazy restores replay in prefetch order. Warm starts
    /// and keep-alive are untouched — sharing only changes what a cold
    /// start pays, never whether one happens.
    pub zygote: Option<Arc<ZygoteImage>>,
}

impl std::fmt::Debug for PlatformConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformConfig")
            .field("provision_cost", &self.provision_cost)
            .field("runtime_startup_cost", &self.runtime_startup_cost)
            .field("keep_alive", &self.keep_alive)
            .field("container_base_mem_kb", &self.container_base_mem_kb)
            .field("jitter_sigma", &self.jitter_sigma)
            .field("max_containers", &self.max_containers)
            .field("observed", &self.observer_factory.is_some())
            .field(
                "chaos",
                &self.chaos.as_ref().is_some_and(|c| c.is_enabled()),
            )
            .field("snapshots", &self.snapshot_store.is_some())
            .field("zygote", &self.zygote.is_some())
            .finish()
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            provision_cost: SimDuration::from_millis(45),
            runtime_startup_cost: SimDuration::from_millis(35),
            keep_alive: SimDuration::from_mins(10),
            container_base_mem_kb: 35 * 1024,
            jitter_sigma: 0.04,
            max_containers: 1_000,
            observer_factory: None,
            chaos: None,
            snapshot_store: SnapshotStore::default_for_env(),
            zygote: None,
        }
    }
}

impl PlatformConfig {
    /// Returns a copy with the given profiler attachment factory.
    pub fn with_observer_factory(mut self, factory: ObserverFactory) -> Self {
        self.observer_factory = Some(factory);
        self
    }

    /// Returns a copy without speed jitter (for exact-arithmetic tests).
    pub fn without_jitter(mut self) -> Self {
        self.jitter_sigma = 0.0;
        self
    }

    /// Returns a copy injecting faults per the shared chaos plan.
    pub fn with_chaos(mut self, chaos: Arc<ChaosPlan>) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Returns a copy sharing the given cold-start snapshot store.
    pub fn with_snapshot_store(mut self, store: Arc<SnapshotStore>) -> Self {
        self.snapshot_store = Some(store);
        self
    }

    /// Returns a copy that replays every cold start through the loader
    /// (no snapshot memoization).
    pub fn without_snapshots(mut self) -> Self {
        self.snapshot_store = None;
        self
    }

    /// Returns a copy whose cold starts fork from the given zygote image.
    pub fn with_zygote(mut self, zygote: Arc<ZygoteImage>) -> Self {
        self.zygote = Some(zygote);
        self
    }
}

/// The serverless platform serving one application deployment.
pub struct Platform {
    app: Arc<Application>,
    /// Import-closure plan shared by every container's process, built once
    /// per deployment.
    plan: Arc<LoaderPlan>,
    config: PlatformConfig,
    containers: Vec<Container>,
    next_container_id: usize,
    rng: SimRng,
    records: Vec<InvocationRecord>,
    /// Earliest instants at which some container *could* have outlived its
    /// keep-alive window; the reclamation scan runs only when one is due.
    expiry_events: EventQueue<()>,
    /// Reused scratch for draining `expiry_events` without allocating.
    expiry_scratch: Vec<(SimTime, ())>,
    /// Snapshot-cache fingerprint of this deployment (application
    /// structure mixed with the chaos configuration), computed once at
    /// deploy time. A redeploy builds a new `Platform`, so an optimized
    /// application never reuses the pre-optimization entries.
    snapshot_fingerprint: u64,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("app", &self.app.name())
            .field("containers", &self.containers.len())
            .field("records", &self.records.len())
            .finish()
    }
}

impl Platform {
    /// Creates a platform serving `app` with the given config and RNG seed.
    pub fn new(app: Arc<Application>, config: PlatformConfig, seed: u64) -> Self {
        let plan = Arc::new(LoaderPlan::build(&app));
        let snapshot_fingerprint = Self::fingerprint(&app, &config);
        // Redeploy invalidation: entries from other deployment generations
        // of a shared store are dead weight (their fingerprints can never
        // be looked up again by this platform), so evict them instead of
        // letting them occupy pool budget.
        if let Some(store) = &config.snapshot_store {
            store.invalidate_stale(snapshot_fingerprint);
        }
        Platform {
            app,
            plan,
            config,
            containers: Vec::new(),
            next_container_id: 0,
            rng: SimRng::seed_from(seed),
            records: Vec::new(),
            expiry_events: EventQueue::new(),
            expiry_scratch: Vec::new(),
            snapshot_fingerprint,
        }
    }

    /// The deployment's snapshot fingerprint: everything that shapes an
    /// init replay (module graph, stripped flags, import modes) plus the
    /// chaos perturbation rates, so experiments under different fault
    /// schedules never share cache entries.
    fn fingerprint(app: &Application, config: &PlatformConfig) -> u64 {
        let mut fp = deployment_fingerprint(app);
        if let Some(chaos) = config.chaos.as_ref().filter(|c| c.is_enabled()) {
            let c = chaos.config();
            for rate in [
                c.crash_during_init,
                c.sampler_dropout,
                c.upload_loss,
                c.upload_truncation,
                c.deploy_failure,
                c.reclamation_storm,
            ] {
                fp = SnapshotKey::new(ModuleId::from_index(0), fp)
                    .mix(rate.to_bits())
                    .fingerprint;
            }
        }
        fp
    }

    /// Cold-starts `container`'s process for `root`, restoring a memoized
    /// snapshot when one exists for this deployment. Observed processes
    /// always replay for real — the profiler must see every advance — and
    /// unobserved full-stream replays are byte-identical either way, so
    /// records, load events and golden reports cannot tell the paths
    /// apart. A lazy-restore store additionally replays only the recorded
    /// working set, modeling a REAP-style restore: the cold start gets
    /// cheaper and omitted modules fault in at first use.
    fn cold_start_container(
        &self,
        container: &mut Container,
        root: ModuleId,
        now: SimTime,
    ) -> Result<SimDuration, RuntimeFault> {
        let store = match &self.config.snapshot_store {
            Some(store) if !container.process().has_observer() => store,
            _ => return container.process_mut().cold_start(root),
        };
        let key = SnapshotKey::new(root, self.snapshot_fingerprint);
        if let Some(snapshot) = store.get(&key, now) {
            let load = if store.lazy_restore() {
                container.process_mut().restore_snapshot_lazy(&snapshot)
            } else {
                container.process_mut().restore_snapshot(&snapshot)
            };
            container.set_snapshot(key, snapshot);
            return Ok(load);
        }
        let load = container.process_mut().cold_start(root)?;
        let snapshot = store.insert(key, container.process().capture_snapshot(), now);
        container.set_snapshot(key, snapshot);
        Ok(load)
    }

    /// Post-invocation bookkeeping for working-set stores: charges the
    /// lazily-faulted loads this invocation paid and refines the stored
    /// working set with what the handler has touched. Full-stream stores
    /// skip all of it (nothing is ever omitted, so nothing can fault).
    fn refine_snapshot(store: &SnapshotStore, container: &mut Container, now: SimTime) {
        if !store.lazy_restore() {
            return;
        }
        let Some((key, snapshot)) = container.snapshot().cloned() else {
            return;
        };
        store.record_faults(container.process_mut().take_faulted_loads());
        let working = container.process().working_set_for(&snapshot);
        store.refine(&key, &working, now);
    }

    /// The deployed application.
    pub fn app(&self) -> &Arc<Application> {
        &self.app
    }

    /// All records so far.
    pub fn records(&self) -> &[InvocationRecord] {
        &self.records
    }

    /// Number of currently provisioned containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Pre-provisions `count` warm containers at time zero, each cold-started
    /// for `handler`'s module graph — the platform-level mitigation
    /// (pre-warmed instances, provisioned concurrency) the paper's related
    /// work discusses. SlimStart's application-level optimization composes
    /// with it: a slimmer package also warms up faster and cheaper.
    ///
    /// The pool is not replenished: once keep-alive reclaims an idle
    /// pre-warmed container it is gone, like an expired provisioned burst.
    ///
    /// # Errors
    ///
    /// Propagates a [`RuntimeFault`] raised during warm-up.
    pub fn prewarm(
        &mut self,
        count: usize,
        handler: slimstart_appmodel::HandlerId,
    ) -> Result<(), RuntimeFault> {
        let root = self.app.handler_module(handler);
        for _ in 0..count {
            let time_scale = self.sample_time_scale();
            let id = self.next_container_id;
            self.next_container_id += 1;
            let mut container = Container::with_plan(
                id,
                Arc::clone(&self.app),
                Arc::clone(&self.plan),
                time_scale,
                SimTime::ZERO,
            );
            if let Some(zygote) = &self.config.zygote {
                container.process_mut().set_zygote(Arc::clone(zygote));
            }
            if let Some(factory) = &self.config.observer_factory {
                let dropped = self
                    .config
                    .chaos
                    .as_ref()
                    .is_some_and(|c| c.sampler_dropout());
                if !dropped {
                    container.process_mut().attach_observer(factory());
                }
            }
            let provision = self.config.provision_cost.mul_f64(time_scale);
            let runtime_startup = self.config.runtime_startup_cost.mul_f64(time_scale);
            let load = self.cold_start_container(&mut container, root, SimTime::ZERO)?;
            // The container is busy until its warm-up completes.
            container.occupy(SimTime::ZERO, provision + runtime_startup + load);
            self.note_occupied(container.busy_until());
            self.containers.push(container);
        }
        Ok(())
    }

    /// Serves a batch of invocations (must be sorted by arrival time) and
    /// returns the records for this batch.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeFault`] raised by the application —
    /// faults indicate an unsafe optimization, so the run is aborted rather
    /// than papered over.
    ///
    /// # Panics
    ///
    /// Panics if `invocations` is not sorted by arrival time.
    pub fn run(&mut self, invocations: &[Invocation]) -> Result<&[InvocationRecord], RuntimeFault> {
        let first_new = self.records.len();
        let mut prev = SimTime::ZERO;
        for inv in invocations {
            assert!(inv.at >= prev, "invocations must be sorted by arrival time");
            prev = inv.at;
            let record = self.dispatch(*inv)?;
            self.records.push(record);
        }
        Ok(&self.records[first_new..])
    }

    /// Records the earliest instant at which a container that just became
    /// busy until `busy_until` could next be reclaimed. `occupy` sets
    /// `last_used = busy_until` and `expired_at` is strict (`> keep_alive`),
    /// so one microsecond past the window is the first expired instant.
    fn note_occupied(&mut self, busy_until: SimTime) {
        let due = busy_until + self.config.keep_alive + SimDuration::from_micros(1);
        self.expiry_events.schedule(due, ());
    }

    fn dispatch(&mut self, inv: Invocation) -> Result<InvocationRecord, RuntimeFault> {
        let now = inv.at;
        // Reclaim expired containers first (keep-alive policy). Every occupy
        // scheduled the occupant's earliest possible expiry, so the O(n)
        // retain scan runs only when such an instant has actually passed —
        // the steady-state dispatch gets by on a single heap peek. Stale
        // events (container re-occupied or already reclaimed since) just
        // trigger a scan that removes nothing.
        let keep_alive = self.config.keep_alive;
        self.expiry_events
            .pop_due_into(now, &mut self.expiry_scratch);
        if !self.expiry_scratch.is_empty() {
            self.containers.retain(|c| !c.expired_at(now, keep_alive));
        }

        // Chaos: a reclamation storm seizes every idle container at once,
        // as if the platform clawed back keep-alive capacity under pressure.
        if let Some(chaos) = &self.config.chaos {
            if chaos.reclamation_storm() {
                self.containers.retain(|c| !c.idle_at(now));
            }
        }

        // Prefer the warm container that has been idle the longest.
        let warm = self
            .containers
            .iter_mut()
            .filter(|c| c.idle_at(now))
            .min_by_key(|c| c.busy_until())
            .map(|c| c.id());

        match warm {
            Some(id) => self.dispatch_warm(inv, id),
            None => {
                if self.containers.len() >= self.config.max_containers {
                    self.dispatch_queued(inv)
                } else {
                    self.dispatch_cold(inv, SimDuration::ZERO)
                }
            }
        }
    }

    fn dispatch_warm(
        &mut self,
        inv: Invocation,
        container_id: usize,
    ) -> Result<InvocationRecord, RuntimeFault> {
        let container = self
            .containers
            .iter_mut()
            .find(|c| c.id() == container_id)
            .expect("warm container exists");
        let mut inv_rng = SimRng::seed_from(inv.seed);
        let outcome = container.process_mut().invoke(inv.handler, &mut inv_rng)?;
        if let Some(store) = &self.config.snapshot_store {
            Self::refine_snapshot(store, container, inv.at);
        }
        container.occupy(inv.at, outcome.exec_time);
        let busy_until = container.busy_until();
        self.note_occupied(busy_until);
        let base = self.config.container_base_mem_kb;
        Ok(InvocationRecord {
            at: inv.at,
            handler: inv.handler,
            cold: false,
            wait_time: SimDuration::ZERO,
            provision_time: SimDuration::ZERO,
            runtime_startup_time: SimDuration::ZERO,
            load_time: SimDuration::ZERO,
            init_latency: SimDuration::ZERO,
            exec_latency: outcome.exec_time,
            e2e_latency: outcome.exec_time,
            deferred_load_time: outcome.deferred_load_time,
            peak_mem_kb: outcome.peak_mem_kb + base,
            container: container_id,
        })
    }

    fn dispatch_cold(
        &mut self,
        inv: Invocation,
        wait: SimDuration,
    ) -> Result<InvocationRecord, RuntimeFault> {
        // Chaos: the sandbox may crash mid-init; the platform retries with a
        // fresh one and the request eats the wasted provision + runtime
        // startup as extra wait. Crashed attempts are charged at scale 1.0 —
        // deliberately not drawing `sample_time_scale` — so the platform's
        // jitter stream is never perturbed by chaos being enabled.
        let mut wait = wait;
        if let Some(chaos) = &self.config.chaos {
            let mut crashes: u64 = 0;
            while crashes < MAX_INIT_CRASHES && chaos.crash_during_init() {
                crashes += 1;
            }
            wait += (self.config.provision_cost + self.config.runtime_startup_cost) * crashes;
        }

        let time_scale = self.sample_time_scale();
        let id = self.next_container_id;
        self.next_container_id += 1;
        let mut container = Container::with_plan(
            id,
            Arc::clone(&self.app),
            Arc::clone(&self.plan),
            time_scale,
            inv.at,
        );
        if let Some(zygote) = &self.config.zygote {
            container.process_mut().set_zygote(Arc::clone(zygote));
        }
        if let Some(factory) = &self.config.observer_factory {
            // Chaos: a sampler dropout window — the profiler attachment
            // fails for this container's whole lifetime (zero samples).
            let dropped = self
                .config
                .chaos
                .as_ref()
                .is_some_and(|c| c.sampler_dropout());
            if !dropped {
                container.process_mut().attach_observer(factory());
            }
        }

        let provision = self.config.provision_cost.mul_f64(time_scale);
        let runtime_startup = self.config.runtime_startup_cost.mul_f64(time_scale);
        let root = self.app.handler_module(inv.handler);
        let load = self.cold_start_container(&mut container, root, inv.at)?;
        let init = provision + runtime_startup + load;

        let mut inv_rng = SimRng::seed_from(inv.seed);
        let outcome = container.process_mut().invoke(inv.handler, &mut inv_rng)?;
        if let Some(store) = &self.config.snapshot_store {
            Self::refine_snapshot(store, &mut container, inv.at);
        }
        let e2e = wait + init + outcome.exec_time;
        container.occupy(inv.at + wait, init + outcome.exec_time);
        self.note_occupied(container.busy_until());
        let base = self.config.container_base_mem_kb;
        let record = InvocationRecord {
            at: inv.at,
            handler: inv.handler,
            cold: true,
            wait_time: wait,
            provision_time: provision,
            runtime_startup_time: runtime_startup,
            load_time: load,
            init_latency: init,
            exec_latency: outcome.exec_time,
            e2e_latency: e2e,
            deferred_load_time: outcome.deferred_load_time,
            peak_mem_kb: outcome.peak_mem_kb + base,
            container: id,
        };
        self.containers.push(container);
        Ok(record)
    }

    /// All containers busy and at the cap: wait for the first to free up.
    fn dispatch_queued(&mut self, inv: Invocation) -> Result<InvocationRecord, RuntimeFault> {
        let free_at = self
            .containers
            .iter()
            .map(Container::busy_until)
            .min()
            .expect("cap implies at least one container");
        let wait = free_at.saturating_since(inv.at);
        let id = self
            .containers
            .iter()
            .min_by_key(|c| c.busy_until())
            .map(Container::id)
            .expect("container exists");
        let container = self
            .containers
            .iter_mut()
            .find(|c| c.id() == id)
            .expect("container exists");
        let mut inv_rng = SimRng::seed_from(inv.seed);
        let outcome = container.process_mut().invoke(inv.handler, &mut inv_rng)?;
        if let Some(store) = &self.config.snapshot_store {
            Self::refine_snapshot(store, container, inv.at);
        }
        container.occupy(free_at, outcome.exec_time);
        let busy_until = container.busy_until();
        self.note_occupied(busy_until);
        let base = self.config.container_base_mem_kb;
        Ok(InvocationRecord {
            at: inv.at,
            handler: inv.handler,
            cold: false,
            wait_time: wait,
            provision_time: SimDuration::ZERO,
            runtime_startup_time: SimDuration::ZERO,
            load_time: SimDuration::ZERO,
            init_latency: SimDuration::ZERO,
            exec_latency: outcome.exec_time,
            e2e_latency: wait + outcome.exec_time,
            deferred_load_time: outcome.deferred_load_time,
            peak_mem_kb: outcome.peak_mem_kb + base,
            container: id,
        })
    }

    fn sample_time_scale(&mut self) -> f64 {
        if self.config.jitter_sigma <= 0.0 {
            return 1.0;
        }
        // Log-normal with median 1.0.
        let u1 = (1.0 - self.rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.config.jitter_sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_appmodel::imports::ImportMode;
    use slimstart_appmodel::HandlerId;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn app() -> Arc<Application> {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 100);
        let root = b.add_library_module("lib", ms(99), 1_000, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        let f_lib = b.add_function(
            "work",
            root,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(10)),
            }],
        );
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_lib),
            }],
        );
        b.add_handler("main", f);
        Arc::new(b.finish().unwrap())
    }

    fn cfg() -> PlatformConfig {
        PlatformConfig::default().without_jitter()
    }

    fn inv(at_ms: u64, seed: u64) -> Invocation {
        Invocation {
            at: SimTime::from_millis(at_ms),
            handler: HandlerId::from_index(0),
            seed,
        }
    }

    #[test]
    fn first_invocation_is_cold_with_decomposed_init() {
        let mut p = Platform::new(app(), cfg(), 1);
        let recs = p.run(&[inv(0, 1)]).unwrap();
        let r = recs[0];
        assert!(r.cold);
        assert_eq!(r.provision_time, ms(45));
        assert_eq!(r.runtime_startup_time, ms(35));
        assert_eq!(r.load_time, ms(100)); // 1 + 99
        assert_eq!(r.init_latency, ms(180));
        assert_eq!(r.exec_latency, ms(10));
        assert_eq!(r.e2e_latency, ms(190));
        // 35 MB base + 1.1 MB modules.
        assert_eq!(r.peak_mem_kb, 35 * 1024 + 1_100);
    }

    #[test]
    fn back_to_back_requests_hit_warm_container() {
        let mut p = Platform::new(app(), cfg(), 1);
        let recs = p
            .run(&[inv(0, 1), inv(1_000, 2), inv(2_000, 3)])
            .unwrap()
            .to_vec();
        assert!(recs[0].cold);
        assert!(!recs[1].cold);
        assert!(!recs[2].cold);
        assert_eq!(recs[1].init_latency, SimDuration::ZERO);
        assert_eq!(recs[1].e2e_latency, ms(10));
        assert_eq!(p.container_count(), 1);
    }

    #[test]
    fn keep_alive_expiry_recreates_cold_start() {
        let mut p = Platform::new(app(), cfg(), 1);
        let gap_ms = 11 * 60 * 1000; // > 10 min keep-alive
        let recs = p.run(&[inv(0, 1), inv(gap_ms, 2)]).unwrap().to_vec();
        assert!(recs[0].cold);
        assert!(recs[1].cold);
        assert_eq!(p.container_count(), 1); // old one reclaimed
    }

    #[test]
    fn concurrent_requests_scale_out() {
        let mut p = Platform::new(app(), cfg(), 1);
        // Second arrives while first still initializing.
        let recs = p.run(&[inv(0, 1), inv(5, 2)]).unwrap().to_vec();
        assert!(recs[0].cold);
        assert!(recs[1].cold);
        assert_eq!(p.container_count(), 2);
    }

    #[test]
    fn container_cap_queues() {
        let config = PlatformConfig {
            max_containers: 1,
            ..cfg()
        };
        let mut p = Platform::new(app(), config, 1);
        let recs = p.run(&[inv(0, 1), inv(5, 2)]).unwrap().to_vec();
        assert!(recs[0].cold);
        assert!(!recs[1].cold);
        // First busy until 190 ms; second waits 185 ms then runs warm.
        assert_eq!(recs[1].wait_time, ms(185));
        assert_eq!(recs[1].e2e_latency, ms(195));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_invocations_panic() {
        let mut p = Platform::new(app(), cfg(), 1);
        let _ = p.run(&[inv(10, 1), inv(0, 2)]);
    }

    #[test]
    fn prewarmed_pool_absorbs_first_requests() {
        let mut p = Platform::new(app(), cfg(), 1);
        p.prewarm(2, HandlerId::from_index(0)).unwrap();
        assert_eq!(p.container_count(), 2);
        // Requests arriving after warm-up completes (init = 180 ms) are warm.
        let recs = p.run(&[inv(200, 1), inv(210, 2)]).unwrap().to_vec();
        assert!(!recs[0].cold);
        assert!(!recs[1].cold);
        assert_eq!(recs[0].init_latency, SimDuration::ZERO);
    }

    #[test]
    fn requests_during_warmup_still_cold_start() {
        let mut p = Platform::new(app(), cfg(), 1);
        p.prewarm(1, HandlerId::from_index(0)).unwrap();
        // Arrives at 10 ms, while the pool is still warming (busy to 180 ms).
        let recs = p.run(&[inv(10, 1)]).unwrap().to_vec();
        assert!(recs[0].cold);
        assert_eq!(p.container_count(), 2);
    }

    #[test]
    fn prewarmed_pool_expires_like_any_container() {
        let mut p = Platform::new(app(), cfg(), 1);
        p.prewarm(1, HandlerId::from_index(0)).unwrap();
        // After keep-alive lapses, the pool is reclaimed and the request
        // cold-starts.
        let recs = p.run(&[inv(11 * 60 * 1000, 1)]).unwrap().to_vec();
        assert!(recs[0].cold);
        assert_eq!(p.container_count(), 1);
    }

    #[test]
    fn jitter_produces_varying_init() {
        let config = PlatformConfig {
            jitter_sigma: 0.1,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(app(), config, 7);
        let gap = 11 * 60 * 1000;
        let recs = p
            .run(&[inv(0, 1), inv(gap, 2), inv(2 * gap, 3)])
            .unwrap()
            .to_vec();
        let inits: Vec<u64> = recs.iter().map(|r| r.init_latency.as_micros()).collect();
        assert!(inits[0] != inits[1] || inits[1] != inits[2]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut p = Platform::new(app(), PlatformConfig::default(), 99);
            p.run(&[inv(0, 1), inv(10, 2)]).unwrap().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn records_accumulate_across_batches() {
        let mut p = Platform::new(app(), cfg(), 1);
        p.run(&[inv(0, 1)]).unwrap();
        p.run(&[inv(1_000, 2)]).unwrap();
        assert_eq!(p.records().len(), 2);
    }

    mod snapshots {
        use super::*;

        #[test]
        fn snapshot_cache_is_byte_invisible_in_records() {
            // Jitter on, so restores replay through varying time scales;
            // the recurrent cold starts (keep-alive gaps) hit the cache and
            // must produce byte-identical records either way.
            let gap = 11 * 60 * 1000;
            let invs = [inv(0, 1), inv(gap, 2), inv(2 * gap, 3), inv(3 * gap, 4)];
            let jittered = PlatformConfig {
                jitter_sigma: 0.1,
                ..PlatformConfig::default()
            };
            let store = Arc::new(SnapshotStore::new());
            let cached = {
                let c = jittered.clone().with_snapshot_store(Arc::clone(&store));
                let mut p = Platform::new(app(), c, 7);
                p.run(&invs).unwrap().to_vec()
            };
            assert_eq!(store.misses(), 1, "first cold start populates");
            assert_eq!(store.hits(), 3, "repeats restore");
            let replayed = {
                let mut p = Platform::new(app(), jittered.without_snapshots(), 7);
                p.run(&invs).unwrap().to_vec()
            };
            assert_eq!(cached, replayed);
        }

        #[test]
        fn redeploy_invalidates_by_fingerprint() {
            let store = Arc::new(SnapshotStore::new());
            let c = cfg().with_snapshot_store(Arc::clone(&store));
            let mut p = Platform::new(app(), c.clone(), 1);
            p.run(&[inv(0, 1)]).unwrap();
            assert_eq!(store.len(), 1);
            // "Optimize" the app (defer the lib import, as the optimizer
            // would) and redeploy sharing the same store: the changed
            // fingerprint must miss and add a second entry.
            let mut b = AppBuilder::new("t");
            let lib = b.add_library("lib");
            let h = b.add_app_module("handler", ms(1), 100);
            let root = b.add_library_module("lib", ms(99), 1_000, false, lib);
            b.add_import(h, root, 2, ImportMode::Deferred).unwrap();
            let f_lib = b.add_function(
                "work",
                root,
                5,
                vec![Stmt {
                    line: 6,
                    kind: StmtKind::Work(ms(10)),
                }],
            );
            let f = b.add_function(
                "main",
                h,
                4,
                vec![Stmt {
                    line: 5,
                    kind: StmtKind::call(f_lib),
                }],
            );
            b.add_handler("main", f);
            let optimized = Arc::new(b.finish().unwrap());
            let mut p2 = Platform::new(optimized, c, 1);
            // Deploying the changed fingerprint evicted the stale entry
            // outright — not just a miss.
            assert_eq!(store.len(), 0, "redeploy must evict stale entries");
            assert_eq!(store.evictions(), 1);
            p2.run(&[inv(0, 1)]).unwrap();
            assert_eq!(store.len(), 1, "redeploy must not reuse old entries");
            assert_eq!(store.hits(), 0);
        }

        #[test]
        fn lazy_store_refines_working_set_and_speeds_cold_starts() {
            // handler calls into lib only; lib.dead is an eagerly imported
            // module the handler never uses. After the first invocation
            // refines the working set, later cold starts restore lazily and
            // skip lib.dead's 200 ms — a genuinely faster modeled cold
            // start, unlike the byte-invisible full-stream cache.
            let mut b = AppBuilder::new("lazy");
            let lib = b.add_library("lib");
            let h = b.add_app_module("handler", ms(1), 100);
            let root = b.add_library_module("lib", ms(99), 1_000, false, lib);
            let dead = b.add_library_module("lib.dead", ms(200), 4_000, false, lib);
            b.add_import(h, root, 2, ImportMode::Global).unwrap();
            b.add_import(root, dead, 3, ImportMode::Global).unwrap();
            let f_lib = b.add_function(
                "work",
                root,
                5,
                vec![Stmt {
                    line: 6,
                    kind: StmtKind::Work(ms(10)),
                }],
            );
            let f = b.add_function(
                "main",
                h,
                4,
                vec![Stmt {
                    line: 5,
                    kind: StmtKind::call(f_lib),
                }],
            );
            b.add_handler("main", f);
            let app = Arc::new(b.finish().unwrap());

            let store = Arc::new(SnapshotStore::with_limits(None, true));
            let c = cfg().with_snapshot_store(Arc::clone(&store));
            let mut p = Platform::new(Arc::clone(&app), c, 1);
            let gap = 11 * 60 * 1000;
            let recs = p
                .run(&[inv(0, 1), inv(gap, 2), inv(2 * gap, 3)])
                .unwrap()
                .to_vec();
            // First cold start replays everything: 1 + 99 + 200 ms.
            assert_eq!(recs[0].load_time, ms(300));
            // Later ones restore the refined working set: lib.dead omitted.
            assert_eq!(recs[1].load_time, ms(100));
            assert_eq!(recs[2].load_time, ms(100));
            // The handler never touches lib.dead, so nothing faults.
            assert_eq!(store.faulted_loads(), 0);
            assert_eq!((store.hits(), store.misses()), (2, 1));
            // Resident accounting shrank to the working set:
            // handler (100 KiB) + lib (1000 KiB), not lib.dead's 4000.
            assert_eq!(store.resident_bytes(), 1_100 * 1024);
        }

        #[test]
        fn observed_processes_never_use_the_cache() {
            use slimstart_pyrt::observer::NullObserver;
            let store = Arc::new(SnapshotStore::new());
            let factory: ObserverFactory = Arc::new(|| Box::new(NullObserver));
            let c = cfg()
                .with_snapshot_store(Arc::clone(&store))
                .with_observer_factory(factory);
            let gap = 11 * 60 * 1000;
            let mut p = Platform::new(app(), c, 1);
            p.run(&[inv(0, 1), inv(gap, 2)]).unwrap();
            assert!(store.is_empty(), "observed cold starts must replay");
            assert_eq!((store.hits(), store.misses()), (0, 0));
        }
    }

    mod zygotes {
        use super::*;
        use slimstart_pyrt::zygote::ZygoteCounters;

        fn lib_zygote(app: &Application, fork_us: u64) -> (Arc<ZygoteImage>, Arc<ZygoteCounters>) {
            let counters = Arc::new(ZygoteCounters::default());
            let image = Arc::new(ZygoteImage::for_app(
                app,
                &["lib"],
                1,
                SimDuration::from_micros(fork_us),
                Arc::clone(&counters),
            ));
            (image, counters)
        }

        #[test]
        fn forked_cold_starts_acquire_resident_libraries_cheaply() {
            let app = app();
            let (image, counters) = lib_zygote(&app, 100);
            let c = cfg().without_snapshots().with_zygote(image);
            let mut p = Platform::new(Arc::clone(&app), c, 1);
            let gap = 11 * 60 * 1000;
            let recs = p
                .run(&[inv(0, 1), inv(1_000, 2), inv(gap + 1_000, 3)])
                .unwrap()
                .to_vec();
            // Cold: handler runs its 1 ms top level, lib (99 ms nominal) is
            // acquired from the zygote at 100 µs.
            assert!(recs[0].cold);
            assert_eq!(recs[0].load_time, ms(1) + SimDuration::from_micros(100));
            // Warm routing and keep-alive are untouched by sharing.
            assert!(!recs[1].cold);
            assert_eq!(recs[1].e2e_latency, ms(10));
            // Keep-alive reclaim later: a fresh cold start forks again.
            assert!(recs[2].cold);
            assert_eq!(counters.forks(), 2);
            assert_eq!(counters.forked_loads(), 2);
        }

        #[test]
        fn zygote_snapshot_cache_is_byte_invisible_in_records() {
            // Snapshots record nominal charges; restores substitute the
            // fork cost exactly as real forked cold starts do, so the
            // full-stream cache stays byte-invisible under a zygote,
            // jitter included.
            let gap = 11 * 60 * 1000;
            let invs = [inv(0, 1), inv(gap, 2), inv(2 * gap, 3), inv(3 * gap, 4)];
            let jittered = PlatformConfig {
                jitter_sigma: 0.1,
                ..PlatformConfig::default()
            };
            let app = app();
            let cached = {
                let (image, _) = lib_zygote(&app, 100);
                let store = Arc::new(SnapshotStore::new());
                let c = jittered
                    .clone()
                    .with_snapshot_store(Arc::clone(&store))
                    .with_zygote(image);
                let mut p = Platform::new(Arc::clone(&app), c, 7);
                let recs = p.run(&invs).unwrap().to_vec();
                assert_eq!((store.hits(), store.misses()), (3, 1));
                recs
            };
            let replayed = {
                let (image, _) = lib_zygote(&app, 100);
                let c = jittered.without_snapshots().with_zygote(image);
                let mut p = Platform::new(Arc::clone(&app), c, 7);
                p.run(&invs).unwrap().to_vec()
            };
            assert_eq!(cached, replayed);
        }
    }

    mod chaos_injection {
        use super::*;
        use crate::chaos::{ChaosConfig, ChaosPlan};

        fn chaotic(config: ChaosConfig) -> PlatformConfig {
            cfg().with_chaos(Arc::new(ChaosPlan::from_seed(config, 11)))
        }

        #[test]
        fn none_plan_is_byte_identical_to_no_plan() {
            let plain = {
                let mut p = Platform::new(app(), cfg(), 5);
                p.run(&[inv(0, 1), inv(500, 2), inv(1_000, 3)])
                    .unwrap()
                    .to_vec()
            };
            let passthrough = {
                let c = cfg().with_chaos(Arc::new(ChaosPlan::none()));
                let mut p = Platform::new(app(), c, 5);
                p.run(&[inv(0, 1), inv(500, 2), inv(1_000, 3)])
                    .unwrap()
                    .to_vec()
            };
            assert_eq!(plain, passthrough);
        }

        #[test]
        fn certain_init_crashes_charge_capped_wait() {
            let config = ChaosConfig {
                crash_during_init: 1.0,
                ..ChaosConfig::DISABLED
            };
            let mut p = Platform::new(app(), chaotic(config), 5);
            let recs = p.run(&[inv(0, 1)]).unwrap();
            // Rate 1.0 hits the retry cap: 3 crashed sandboxes at
            // (45 + 35) ms each before one survives.
            assert!(recs[0].cold);
            assert_eq!(recs[0].wait_time, ms(3 * 80));
            assert_eq!(recs[0].e2e_latency, ms(3 * 80 + 190));
        }

        #[test]
        fn reclamation_storm_forces_recurrent_cold_starts() {
            let config = ChaosConfig {
                reclamation_storm: 1.0,
                ..ChaosConfig::DISABLED
            };
            let mut p = Platform::new(app(), chaotic(config), 5);
            // 1 s apart: without the storm the second request is warm
            // (see back_to_back_requests_hit_warm_container).
            let recs = p.run(&[inv(0, 1), inv(1_000, 2)]).unwrap();
            assert!(recs[0].cold);
            assert!(recs[1].cold);
        }

        #[test]
        fn sampler_dropout_skips_observer_attachment() {
            use slimstart_pyrt::observer::NullObserver;
            use std::sync::atomic::{AtomicUsize, Ordering};
            static ATTACHED: AtomicUsize = AtomicUsize::new(0);
            let factory: ObserverFactory = Arc::new(|| {
                ATTACHED.fetch_add(1, Ordering::SeqCst);
                Box::new(NullObserver)
            });
            let config = ChaosConfig {
                sampler_dropout: 1.0,
                ..ChaosConfig::DISABLED
            };
            let platform_cfg = chaotic(config).with_observer_factory(factory);
            let mut p = Platform::new(app(), platform_cfg, 5);
            p.run(&[inv(0, 1)]).unwrap();
            assert_eq!(
                ATTACHED.load(Ordering::SeqCst),
                0,
                "dropout must skip attachment"
            );
        }

        #[test]
        fn chaos_does_not_perturb_the_jitter_stream() {
            // Same platform seed, jitter on: the jittered init latencies
            // must be identical with and without chaos (crash penalties
            // land in wait_time, storms only affect warm/cold routing —
            // here every request is cold already).
            let gap = 11 * 60 * 1000;
            let invs = [inv(0, 1), inv(gap, 2), inv(2 * gap, 3)];
            let jittered = PlatformConfig {
                jitter_sigma: 0.1,
                ..PlatformConfig::default()
            };
            let plain: Vec<u64> = {
                let mut p = Platform::new(app(), jittered.clone(), 7);
                p.run(&invs)
                    .unwrap()
                    .iter()
                    .map(|r| r.init_latency.as_micros())
                    .collect()
            };
            let chaotic: Vec<u64> = {
                let config = ChaosConfig {
                    crash_during_init: 0.7,
                    reclamation_storm: 0.7,
                    ..ChaosConfig::DISABLED
                };
                let c = jittered.with_chaos(Arc::new(ChaosPlan::from_seed(config, 11)));
                let mut p = Platform::new(app(), c, 7);
                p.run(&invs)
                    .unwrap()
                    .iter()
                    .map(|r| r.init_latency.as_micros())
                    .collect()
            };
            assert_eq!(plain, chaotic);
        }
    }
}
