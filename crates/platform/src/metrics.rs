//! Metric aggregation: the evaluation's reporting layer.
//!
//! Produces the quantities the paper reports per application: mean and
//! 99th-percentile initialization / end-to-end latency (cold starts), peak
//! memory, and speedup ratios between a baseline and an optimized run.

use slimstart_simcore::stats::Percentiles;

use crate::invocation::InvocationRecord;

/// Aggregated metrics over a batch of invocation records.
#[derive(Debug, Clone, PartialEq)]
pub struct AppMetrics {
    /// Total invocations.
    pub invocations: usize,
    /// Number of cold starts.
    pub cold_starts: usize,
    /// Mean initialization latency over cold starts, ms.
    pub mean_init_ms: f64,
    /// 99th-percentile initialization latency over cold starts, ms.
    pub p99_init_ms: f64,
    /// Mean library-loading time over cold starts, ms (init minus platform
    /// overheads — the paper's "library initialization" of Fig. 1).
    pub mean_load_ms: f64,
    /// 99th-percentile library-loading time over cold starts, ms.
    pub p99_load_ms: f64,
    /// Mean execution latency, ms.
    pub mean_exec_ms: f64,
    /// Mean end-to-end latency, ms.
    pub mean_e2e_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_e2e_ms: f64,
    /// Peak memory across all containers, MB.
    pub peak_mem_mb: f64,
    /// Mean per-invocation peak memory, MB.
    pub mean_mem_mb: f64,
}

impl AppMetrics {
    /// Aggregates a batch of records.
    ///
    /// Initialization statistics are computed over cold starts only (warm
    /// starts have no init phase); execution/end-to-end over all records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn aggregate(records: &[InvocationRecord]) -> AppMetrics {
        assert!(!records.is_empty(), "AppMetrics::aggregate: no records");
        let cold: Vec<&InvocationRecord> = records.iter().filter(|r| r.cold).collect();
        let init: Percentiles = cold.iter().map(|r| r.init_ms()).collect();
        let load: Percentiles = cold.iter().map(|r| r.load_time.as_millis_f64()).collect();
        let exec: Percentiles = records.iter().map(|r| r.exec_ms()).collect();
        let e2e: Percentiles = records.iter().map(|r| r.e2e_ms()).collect();
        let mem: Percentiles = records.iter().map(|r| r.peak_mem_mb()).collect();
        AppMetrics {
            invocations: records.len(),
            cold_starts: cold.len(),
            mean_init_ms: init.mean().unwrap_or(0.0),
            p99_init_ms: init.p99().unwrap_or(0.0),
            mean_load_ms: load.mean().unwrap_or(0.0),
            p99_load_ms: load.p99().unwrap_or(0.0),
            mean_exec_ms: exec.mean().unwrap_or(0.0),
            mean_e2e_ms: e2e.mean().unwrap_or(0.0),
            p99_e2e_ms: e2e.p99().unwrap_or(0.0),
            peak_mem_mb: mem.values().iter().copied().fold(0.0_f64, f64::max),
            mean_mem_mb: mem.mean().unwrap_or(0.0),
        }
    }

    /// Ratio of library-loading time to end-to-end time (Fig. 1's metric).
    pub fn init_ratio(&self) -> f64 {
        if self.mean_e2e_ms == 0.0 {
            0.0
        } else {
            self.mean_load_ms / self.mean_e2e_ms
        }
    }
}

/// Speedups of `optimized` relative to `baseline` (paper Table II columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    /// Mean initialization speedup (×), over the full cold-start init
    /// (provisioning + runtime startup + library loading).
    pub init: f64,
    /// Mean library-loading speedup (×) — the paper's "initialization
    /// speedup", since its measurements attribute init latency to library
    /// loading.
    pub load: f64,
    /// Mean end-to-end speedup (×).
    pub e2e: f64,
    /// 99th-percentile initialization speedup (×).
    pub p99_init: f64,
    /// 99th-percentile library-loading speedup (×).
    pub p99_load: f64,
    /// 99th-percentile end-to-end speedup (×).
    pub p99_e2e: f64,
    /// Peak-memory reduction (×).
    pub mem: f64,
}

impl Speedup {
    /// Computes speedups between two metric sets.
    pub fn between(baseline: &AppMetrics, optimized: &AppMetrics) -> Speedup {
        fn ratio(before: f64, after: f64) -> f64 {
            if after <= 0.0 {
                0.0
            } else {
                before / after
            }
        }
        Speedup {
            init: ratio(baseline.mean_init_ms, optimized.mean_init_ms),
            load: ratio(baseline.mean_load_ms, optimized.mean_load_ms),
            e2e: ratio(baseline.mean_e2e_ms, optimized.mean_e2e_ms),
            p99_init: ratio(baseline.p99_init_ms, optimized.p99_init_ms),
            p99_load: ratio(baseline.p99_load_ms, optimized.p99_load_ms),
            p99_e2e: ratio(baseline.p99_e2e_ms, optimized.p99_e2e_ms),
            mem: ratio(baseline.peak_mem_mb, optimized.peak_mem_mb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::HandlerId;
    use slimstart_simcore::time::{SimDuration, SimTime};

    fn rec(cold: bool, init_ms: u64, exec_ms: u64, mem_kb: u64) -> InvocationRecord {
        InvocationRecord {
            at: SimTime::ZERO,
            handler: HandlerId::from_index(0),
            cold,
            wait_time: SimDuration::ZERO,
            provision_time: SimDuration::ZERO,
            runtime_startup_time: SimDuration::ZERO,
            load_time: SimDuration::from_millis(init_ms),
            init_latency: SimDuration::from_millis(init_ms),
            exec_latency: SimDuration::from_millis(exec_ms),
            e2e_latency: SimDuration::from_millis(init_ms + exec_ms),
            deferred_load_time: SimDuration::ZERO,
            peak_mem_kb: mem_kb,
            container: 0,
        }
    }

    #[test]
    fn aggregates_cold_and_all() {
        let records = vec![
            rec(true, 100, 10, 2048),
            rec(false, 0, 10, 2048),
            rec(true, 200, 10, 4096),
        ];
        let m = AppMetrics::aggregate(&records);
        assert_eq!(m.invocations, 3);
        assert_eq!(m.cold_starts, 2);
        assert!((m.mean_init_ms - 150.0).abs() < 1e-9);
        assert!((m.p99_init_ms - 200.0).abs() < 1e-9);
        assert!((m.mean_exec_ms - 10.0).abs() < 1e-9);
        assert!((m.mean_e2e_ms - (110.0 + 10.0 + 210.0) / 3.0).abs() < 1e-9);
        assert!((m.peak_mem_mb - 4.0).abs() < 1e-9);
    }

    #[test]
    fn init_ratio() {
        let m = AppMetrics::aggregate(&[rec(true, 80, 20, 1024)]);
        assert!((m.init_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn warm_only_batch_has_zero_init() {
        let m = AppMetrics::aggregate(&[rec(false, 0, 25, 1024)]);
        assert_eq!(m.cold_starts, 0);
        assert_eq!(m.mean_init_ms, 0.0);
        assert_eq!(m.p99_init_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "no records")]
    fn empty_batch_panics() {
        AppMetrics::aggregate(&[]);
    }

    #[test]
    fn speedup_between() {
        let base = AppMetrics::aggregate(&[rec(true, 200, 100, 4096)]);
        let opt = AppMetrics::aggregate(&[rec(true, 100, 100, 2048)]);
        let s = Speedup::between(&base, &opt);
        assert!((s.init - 2.0).abs() < 1e-9);
        assert!((s.e2e - 1.5).abs() < 1e-9);
        assert!((s.mem - 2.0).abs() < 1e-9);
    }
}
