//! Deterministic platform fault injection.
//!
//! Production serverless platforms fail in mundane, constant ways: sandboxes
//! crash while initializing, profiler agents drop out, uploads vanish,
//! deploys bounce, and keep-alive capacity is reclaimed in storms. A
//! [`ChaosPlan`] injects exactly those faults into the simulator — from its
//! **own** seeded [`SimRng`] stream, split off the experiment seed with
//! [`SimRng::split_seed`](slimstart_simcore::rng::SimRng::split_seed), so
//! that enabling chaos never perturbs the workload, jitter, or sampling
//! streams of the main simulation. Identical (config, seed) pairs replay
//! identical fault schedules, which is what makes chaos sweeps assertable.
//!
//! [`ChaosPlan::none`] is a true passthrough: the disabled plan carries no
//! RNG state at all, every hook returns immediately without locking, and no
//! platform or pipeline behavior changes — reports stay byte-identical
//! (locked down by `tests/golden_reports.rs`).

use std::fmt;
use std::sync::Mutex;

use slimstart_simcore::rng::SimRng;

/// The kinds of fault a [`ChaosPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A container sandbox crashes while initializing; the platform retries
    /// with a fresh one and the request pays the wasted provision time.
    CrashDuringInit,
    /// A container's profiler attachment fails for the container's whole
    /// lifetime — a sampler dropout window contributing zero samples.
    SamplerDropout,
    /// A profile upload to the collector service is lost in flight.
    UploadLoss,
    /// A profile upload arrives truncated: only a prefix of the samples
    /// survives.
    UploadTruncation,
    /// A redeploy attempt fails transiently.
    DeployFailure,
    /// A keep-alive reclamation storm: every idle container is reclaimed
    /// at once, forcing the subsequent requests to cold-start.
    ReclamationStorm,
}

impl FaultKind {
    /// Every fault kind, in counter order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::CrashDuringInit,
        FaultKind::SamplerDropout,
        FaultKind::UploadLoss,
        FaultKind::UploadTruncation,
        FaultKind::DeployFailure,
        FaultKind::ReclamationStorm,
    ];

    /// Stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CrashDuringInit => "crash-during-init",
            FaultKind::SamplerDropout => "sampler-dropout",
            FaultKind::UploadLoss => "upload-loss",
            FaultKind::UploadTruncation => "upload-truncation",
            FaultKind::DeployFailure => "deploy-failure",
            FaultKind::ReclamationStorm => "reclamation-storm",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::CrashDuringInit => 0,
            FaultKind::SamplerDropout => 1,
            FaultKind::UploadLoss => 2,
            FaultKind::UploadTruncation => 3,
            FaultKind::DeployFailure => 4,
            FaultKind::ReclamationStorm => 5,
        }
    }
}

/// Per-fault injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a cold-starting sandbox crashes mid-init (per attempt).
    pub crash_during_init: f64,
    /// Probability a new container's sampler attachment drops out.
    pub sampler_dropout: f64,
    /// Probability a profile upload is lost (per collection attempt).
    pub upload_loss: f64,
    /// Probability a surviving profile upload arrives truncated.
    pub upload_truncation: f64,
    /// Probability a redeploy attempt fails transiently.
    pub deploy_failure: f64,
    /// Probability a dispatch triggers a keep-alive reclamation storm.
    pub reclamation_storm: f64,
}

impl ChaosConfig {
    /// All rates zero — injects nothing.
    pub const DISABLED: ChaosConfig = ChaosConfig {
        crash_during_init: 0.0,
        sampler_dropout: 0.0,
        upload_loss: 0.0,
        upload_truncation: 0.0,
        deploy_failure: 0.0,
        reclamation_storm: 0.0,
    };

    /// Every fault at the same rate (clamped to `[0, 1]`) — the
    /// `slimstart chaos --fault-rate` knob.
    pub fn uniform(rate: f64) -> Self {
        let r = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        ChaosConfig {
            crash_during_init: r,
            sampler_dropout: r,
            upload_loss: r,
            upload_truncation: r,
            deploy_failure: r,
            reclamation_storm: r,
        }
    }

    /// Whether every rate is zero.
    pub fn is_disabled(&self) -> bool {
        self.rate(FaultKind::CrashDuringInit) <= 0.0
            && self.rate(FaultKind::SamplerDropout) <= 0.0
            && self.rate(FaultKind::UploadLoss) <= 0.0
            && self.rate(FaultKind::UploadTruncation) <= 0.0
            && self.rate(FaultKind::DeployFailure) <= 0.0
            && self.rate(FaultKind::ReclamationStorm) <= 0.0
    }

    /// The configured rate for one fault kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::CrashDuringInit => self.crash_during_init,
            FaultKind::SamplerDropout => self.sampler_dropout,
            FaultKind::UploadLoss => self.upload_loss,
            FaultKind::UploadTruncation => self.upload_truncation,
            FaultKind::DeployFailure => self.deploy_failure,
            FaultKind::ReclamationStorm => self.reclamation_storm,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::DISABLED
    }
}

/// Counts of injected faults, by [`FaultKind`] counter order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Injection counts indexed like [`FaultKind::ALL`].
    pub injected: [u64; 6],
}

impl ChaosStats {
    /// Injections of one kind.
    pub fn of(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total injections across every kind.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }
}

struct ChaosState {
    rng: SimRng,
    stats: ChaosStats,
}

/// A deterministic fault-injection schedule.
///
/// Shared (`Arc`) between the pipeline stages and the platform runs of one
/// application, so one chaos stream covers the whole CI/CD cycle; the fleet
/// orchestrator builds one plan per application from a per-app chaos seed.
/// All hooks take `&self` (the RNG sits behind a mutex) because stage and
/// platform code only hold shared references to their configs; within one
/// pipeline run the draw order is sequential and therefore reproducible.
pub struct ChaosPlan {
    config: ChaosConfig,
    // `None` = disabled: hooks return without locking anything, making
    // `ChaosPlan::none()` a zero-overhead passthrough.
    state: Option<Mutex<ChaosState>>,
}

impl ChaosPlan {
    /// The passthrough plan: injects nothing, draws nothing.
    pub fn none() -> Self {
        ChaosPlan {
            config: ChaosConfig::DISABLED,
            state: None,
        }
    }

    /// A plan injecting per `config` from a dedicated stream seeded with
    /// `seed` (split the seed from the experiment stream with
    /// [`SimRng::split_seed`]). A fully-zero config collapses to
    /// [`ChaosPlan::none`].
    pub fn from_seed(config: ChaosConfig, seed: u64) -> Self {
        if config.is_disabled() {
            return ChaosPlan::none();
        }
        ChaosPlan {
            config,
            state: Some(Mutex::new(ChaosState {
                rng: SimRng::seed_from(seed),
                stats: ChaosStats::default(),
            })),
        }
    }

    /// Whether this plan can inject anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// The configured rates.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Draws one injection decision for `kind`, counting hits.
    pub fn inject(&self, kind: FaultKind) -> bool {
        let Some(state) = &self.state else {
            return false;
        };
        let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
        let hit = s.rng.chance(self.config.rate(kind));
        if hit {
            s.stats.injected[kind.index()] += 1;
        }
        hit
    }

    /// Platform hook: should this cold-start attempt crash mid-init?
    pub fn crash_during_init(&self) -> bool {
        self.inject(FaultKind::CrashDuringInit)
    }

    /// Platform hook: does this container's sampler drop out?
    pub fn sampler_dropout(&self) -> bool {
        self.inject(FaultKind::SamplerDropout)
    }

    /// Pipeline hook: is this profile upload lost in flight?
    pub fn upload_lost(&self) -> bool {
        self.inject(FaultKind::UploadLoss)
    }

    /// Pipeline hook: does this profile upload arrive truncated? Returns
    /// the surviving prefix fraction, in `[0.25, 0.85)`.
    pub fn upload_truncation(&self) -> Option<f64> {
        let Some(state) = &self.state else {
            return None;
        };
        let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
        if !s.rng.chance(self.config.rate(FaultKind::UploadTruncation)) {
            return None;
        }
        s.stats.injected[FaultKind::UploadTruncation.index()] += 1;
        Some(s.rng.uniform(0.25, 0.85))
    }

    /// Pipeline hook: does this redeploy attempt fail?
    pub fn deploy_fails(&self) -> bool {
        self.inject(FaultKind::DeployFailure)
    }

    /// Platform hook: does this dispatch trigger a reclamation storm?
    pub fn reclamation_storm(&self) -> bool {
        self.inject(FaultKind::ReclamationStorm)
    }

    /// A jitter draw in `[0, 1)` from the chaos stream, for retry backoff.
    /// The disabled plan returns a fixed midpoint without drawing.
    pub fn backoff_jitter(&self) -> f64 {
        match &self.state {
            Some(state) => state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .rng
                .next_f64(),
            None => 0.5,
        }
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> ChaosStats {
        match &self.state {
            Some(state) => state.lock().unwrap_or_else(|e| e.into_inner()).stats,
            None => ChaosStats::default(),
        }
    }

    /// Total faults injected so far.
    pub fn total_injected(&self) -> u64 {
        self.stats().total()
    }
}

impl fmt::Debug for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosPlan")
            .field("enabled", &self.is_enabled())
            .field("config", &self.config)
            .field("injected", &self.stats().total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_on(rate: f64) -> ChaosPlan {
        ChaosPlan::from_seed(ChaosConfig::uniform(rate), 7)
    }

    #[test]
    fn none_is_disabled_and_injects_nothing() {
        let plan = ChaosPlan::none();
        assert!(!plan.is_enabled());
        for kind in FaultKind::ALL {
            assert!(!plan.inject(kind));
        }
        assert_eq!(plan.upload_truncation(), None);
        assert_eq!(plan.backoff_jitter(), 0.5);
        assert_eq!(plan.total_injected(), 0);
    }

    #[test]
    fn zero_config_collapses_to_passthrough() {
        let plan = ChaosPlan::from_seed(ChaosConfig::DISABLED, 3);
        assert!(!plan.is_enabled());
    }

    #[test]
    fn certain_rate_always_injects_and_counts() {
        let plan = all_on(1.0);
        for _ in 0..5 {
            assert!(plan.crash_during_init());
            assert!(plan.deploy_fails());
        }
        assert_eq!(plan.stats().of(FaultKind::CrashDuringInit), 5);
        assert_eq!(plan.stats().of(FaultKind::DeployFailure), 5);
        assert_eq!(plan.total_injected(), 10);
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let draw = || {
            let plan = all_on(0.4);
            (0..64)
                .map(|_| plan.inject(FaultKind::UploadLoss))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<bool> = {
            let p = ChaosPlan::from_seed(ChaosConfig::uniform(0.5), 1);
            (0..64).map(|_| p.deploy_fails()).collect()
        };
        let b: Vec<bool> = {
            let p = ChaosPlan::from_seed(ChaosConfig::uniform(0.5), 2);
            (0..64).map(|_| p.deploy_fails()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn truncation_returns_prefix_fraction_in_band() {
        let plan = all_on(1.0);
        for _ in 0..32 {
            let keep = plan.upload_truncation().expect("rate 1.0 always truncates");
            assert!((0.25..0.85).contains(&keep), "keep = {keep}");
        }
    }

    #[test]
    fn uniform_clamps_rates() {
        assert_eq!(ChaosConfig::uniform(7.0).deploy_failure, 1.0);
        assert_eq!(ChaosConfig::uniform(-1.0).deploy_failure, 0.0);
        assert!(ChaosConfig::uniform(f64::NAN).is_disabled());
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 6);
        assert!(labels.contains(&"reclamation-storm"));
    }
}
