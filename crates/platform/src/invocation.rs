//! Invocations and their per-request records.

use slimstart_appmodel::HandlerId;
use slimstart_simcore::time::{SimDuration, SimTime};

/// One request arriving at the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Arrival time.
    pub at: SimTime,
    /// Which entry point the request targets.
    pub handler: HandlerId,
    /// Seed for the request's data-dependent branches (payload identity).
    pub seed: u64,
}

/// The measured outcome of one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationRecord {
    /// Arrival time.
    pub at: SimTime,
    /// Which entry point ran.
    pub handler: HandlerId,
    /// Whether this request cold-started a container.
    pub cold: bool,
    /// Time queued waiting for capacity (zero unless the container cap bit).
    pub wait_time: SimDuration,
    /// Container provisioning time (cold only).
    pub provision_time: SimDuration,
    /// Language-runtime startup time (cold only).
    pub runtime_startup_time: SimDuration,
    /// Library/module loading time (cold only) — the paper's optimization
    /// target.
    pub load_time: SimDuration,
    /// Total initialization latency: provision + runtime startup + loading.
    pub init_latency: SimDuration,
    /// Handler execution latency (includes deferred first-use loads).
    pub exec_latency: SimDuration,
    /// End-to-end latency: wait + init + exec.
    pub e2e_latency: SimDuration,
    /// Portion of `exec_latency` spent in deferred module loading.
    pub deferred_load_time: SimDuration,
    /// Peak resident memory of the serving container, KiB (runtime base +
    /// loaded modules + profiler buffers).
    pub peak_mem_kb: u64,
    /// Index of the container that served the request.
    pub container: usize,
}

impl InvocationRecord {
    /// Initialization latency in fractional milliseconds.
    pub fn init_ms(&self) -> f64 {
        self.init_latency.as_millis_f64()
    }

    /// End-to-end latency in fractional milliseconds.
    pub fn e2e_ms(&self) -> f64 {
        self.e2e_latency.as_millis_f64()
    }

    /// Execution latency in fractional milliseconds.
    pub fn exec_ms(&self) -> f64 {
        self.exec_latency.as_millis_f64()
    }

    /// Peak memory in MB.
    pub fn peak_mem_mb(&self) -> f64 {
        self.peak_mem_kb as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let r = InvocationRecord {
            at: SimTime::ZERO,
            handler: HandlerId::from_index(0),
            cold: true,
            wait_time: SimDuration::ZERO,
            provision_time: SimDuration::from_millis(100),
            runtime_startup_time: SimDuration::from_millis(50),
            load_time: SimDuration::from_millis(350),
            init_latency: SimDuration::from_millis(500),
            exec_latency: SimDuration::from_millis(250),
            e2e_latency: SimDuration::from_millis(750),
            deferred_load_time: SimDuration::ZERO,
            peak_mem_kb: 2048,
            container: 0,
        };
        assert_eq!(r.init_ms(), 500.0);
        assert_eq!(r.e2e_ms(), 750.0);
        assert_eq!(r.exec_ms(), 250.0);
        assert_eq!(r.peak_mem_mb(), 2.0);
    }
}
