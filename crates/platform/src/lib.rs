//! # slimstart-platform
//!
//! A discrete-event serverless platform simulator: the AWS-Lambda stand-in
//! the evaluation runs on.
//!
//! The platform routes an invocation stream to containers. An invocation
//! that finds no warm container **cold-starts** one: container provisioning,
//! then language-runtime startup, then the application's library loading
//! (performed by a fresh [`Process`](slimstart_pyrt::process::Process)).
//! Containers that sit idle past the keep-alive window are reclaimed, which
//! is what makes cold starts recur. Per-invocation records capture
//! initialization, execution and end-to-end latency plus peak memory — the
//! metrics of the paper's Tables II/III and Figs. 1, 8 and 9.
//!
//! # Example
//!
//! ```
//! use slimstart_platform::{Platform, PlatformConfig};
//! use slimstart_platform::invocation::Invocation;
//! use slimstart_appmodel::catalog::by_code;
//! use slimstart_simcore::time::SimTime;
//! use std::sync::Arc;
//!
//! let built = by_code("R-GB").expect("catalog entry").build(7)?;
//! let app = Arc::new(built.app);
//! let handler = app.handler_by_name("handler").expect("handler");
//! let mut platform = Platform::new(app, PlatformConfig::default(), 42);
//! let records = platform.run(&[Invocation { at: SimTime::ZERO, handler, seed: 1 }])?;
//! assert!(records[0].cold);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chaos;
pub mod container;
pub mod invocation;
pub mod metrics;
pub mod platform;

pub use chaos::{ChaosConfig, ChaosPlan, ChaosStats, FaultKind};
pub use invocation::{Invocation, InvocationRecord};
pub use metrics::AppMetrics;
pub use platform::{ObserverFactory, Platform, PlatformConfig};

#[cfg(test)]
mod thread_safety {
    //! The fleet orchestrator shares configurations and collects results
    //! across worker threads; these assertions pin the Send/Sync contract
    //! so a non-thread-safe field (an `Rc`, a raw pointer) cannot sneak in
    //! unnoticed.

    use super::*;
    use crate::metrics::Speedup;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn fleet_shared_types_are_send_and_sync() {
        assert_send_sync::<PlatformConfig>();
        assert_send_sync::<ChaosConfig>();
        assert_send_sync::<ChaosPlan>();
        assert_send_sync::<AppMetrics>();
        assert_send_sync::<Speedup>();
        assert_send_sync::<Invocation>();
        assert_send_sync::<InvocationRecord>();
    }
}
