//! Container lifecycle: the unit of warmth.
//!
//! A container owns one [`Process`] (whose module cache is what makes warm
//! starts fast) and tracks when it last served a request, which drives
//! keep-alive reclamation.

use std::sync::Arc;

use slimstart_appmodel::Application;
use slimstart_pyrt::loader::LoaderPlan;
use slimstart_pyrt::process::Process;
use slimstart_pyrt::snapshot::{Snapshot, SnapshotKey};
use slimstart_simcore::time::{SimDuration, SimTime};

/// A provisioned container holding a live runtime process.
pub struct Container {
    id: usize,
    process: Process,
    /// The container is serving a request until this instant.
    busy_until: SimTime,
    /// When the container last finished serving (for keep-alive).
    last_used: SimTime,
    /// The snapshot this container's cold start went through (restored or
    /// freshly captured), so post-invocation working-set refinements know
    /// which store entry to update.
    snapshot: Option<(SnapshotKey, Arc<Snapshot>)>,
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Container")
            .field("id", &self.id)
            .field("busy_until", &self.busy_until)
            .field("last_used", &self.last_used)
            .finish()
    }
}

impl Container {
    /// Creates a container around a fresh process.
    pub fn new(id: usize, app: Arc<Application>, time_scale: f64, provisioned_at: SimTime) -> Self {
        let plan = Arc::new(LoaderPlan::build(&app));
        Container::with_plan(id, app, plan, time_scale, provisioned_at)
    }

    /// Creates a container around a fresh process that shares a precomputed
    /// [`LoaderPlan`]. The platform builds the plan once per deployment so
    /// every cold start skips the per-process prefix analysis.
    pub fn with_plan(
        id: usize,
        app: Arc<Application>,
        plan: Arc<LoaderPlan>,
        time_scale: f64,
        provisioned_at: SimTime,
    ) -> Self {
        Container {
            id,
            process: Process::with_plan(app, plan, time_scale),
            busy_until: provisioned_at,
            last_used: provisioned_at,
            snapshot: None,
        }
    }

    /// Remembers the snapshot this container cold-started through.
    pub fn set_snapshot(&mut self, key: SnapshotKey, snapshot: Arc<Snapshot>) {
        self.snapshot = Some((key, snapshot));
    }

    /// The snapshot this container cold-started through, if any.
    pub fn snapshot(&self) -> Option<&(SnapshotKey, Arc<Snapshot>)> {
        self.snapshot.as_ref()
    }

    /// The container's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The runtime process (loader state, clock, memory).
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Mutable access to the runtime process.
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// Whether the container is idle (not serving) at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Whether the keep-alive window has lapsed at `now`, making the
    /// container eligible for reclamation.
    pub fn expired_at(&self, now: SimTime, keep_alive: SimDuration) -> bool {
        self.idle_at(now) && now.saturating_since(self.last_used) > keep_alive
    }

    /// Marks the container busy for `[start, start + duration)`.
    pub fn occupy(&mut self, start: SimTime, duration: SimDuration) {
        self.busy_until = start + duration;
        self.last_used = self.busy_until;
    }

    /// The instant the container becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;

    fn app() -> Arc<Application> {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        b.add_handler("h", f);
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn idle_and_occupy() {
        let mut c = Container::new(0, app(), 1.0, SimTime::ZERO);
        assert!(c.idle_at(SimTime::ZERO));
        c.occupy(SimTime::from_millis(10), SimDuration::from_millis(5));
        assert!(!c.idle_at(SimTime::from_millis(12)));
        assert!(c.idle_at(SimTime::from_millis(15)));
        assert_eq!(c.busy_until(), SimTime::from_millis(15));
    }

    #[test]
    fn keep_alive_expiry() {
        let mut c = Container::new(1, app(), 1.0, SimTime::ZERO);
        c.occupy(SimTime::ZERO, SimDuration::from_millis(10));
        let ka = SimDuration::from_secs(60);
        assert!(!c.expired_at(SimTime::from_millis(20), ka));
        assert!(!c.expired_at(SimTime::from_secs(60), ka));
        assert!(c.expired_at(SimTime::from_secs(61), ka));
        // A busy container is never expired.
        c.occupy(SimTime::from_secs(100), SimDuration::from_secs(120));
        assert!(!c.expired_at(SimTime::from_secs(130), ka));
    }
}
