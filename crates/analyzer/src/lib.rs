//! # slimstart-analyzer
//!
//! A multi-pass **static-analysis framework** over the application model:
//! the import graph, the static call graph and the projected source model.
//! Passes emit structured [`Diagnostic`]s — stable lint id, severity,
//! `file:line` span, message and (where mechanical) a suggested
//! [`CodeEdit`](slimstart_appmodel::source::CodeEdit) — collected into an
//! [`AnalysisReport`] with compiler-style text and JSON renderers.
//!
//! The five default passes:
//!
//! 1. **Deferral-safety verifier** ([`safety`]) — proves a candidate
//!    package deferral sound or returns the concrete
//!    [`SafetyViolation`]: a side-effectful module in the subtree, a
//!    side-effectful ancestor loaded only through the boundary, an
//!    import-time attribute touch before the first call, or a deferred-
//!    import cycle. The optimizer consults it before every deferral and
//!    the pipeline runs it as a pre-deployment gate.
//! 2. **Dead global imports** — imports no function of the importer
//!    reaches.
//! 3. **Duplicate/shadowed imports** — redundant global imports and
//!    deferrals nullified by another eager path.
//! 4. **Import-cycle reporting** — full cycle paths through deferred
//!    edges.
//! 5. **Over-approximation auditor** — diffs FaaSLight-style static
//!    reachability against profile-observed usage ([`ObservedUsage`]) and
//!    reports subtrees kept statically but never used (the paper's Fig. 2
//!    gap).
//!
//! On top of these, the [`antipattern`] module contributes six empirical
//! cold-start anti-pattern lints (`eager-monolithic-init`,
//! `oversized-dependency-tree`, `init-in-handler`,
//! `missing-connection-reuse`, `unused-heavy-library`,
//! `handler-hot-import`), each paired with a [`SuggestedFix`] and ranked
//! through a per-runtime [`RuntimeProfile`]; [`auto_fix`] applies the
//! verifier-approved subset and proves convergence by re-analysis.
//! [`Analyzer::with_antipattern_passes`] registers all eleven passes.
//!
//! # Example
//!
//! ```
//! use slimstart_analyzer::Analyzer;
//! use slimstart_appmodel::catalog::by_code;
//!
//! let built = by_code("R-GB").expect("catalog entry").build(7)?;
//! let report = Analyzer::with_default_passes().analyze(&built.app, None);
//! // Catalog apps as shipped carry no unsafe deployed deferrals.
//! assert!(!report.has_errors());
//! println!("{}", report.render_text());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod antipattern;
pub mod context;
pub mod diagnostic;
pub mod passes;
pub mod safety;
pub mod usage;

pub use antipattern::{
    auto_fix, collect_findings, estimated_cold_start_ms, lint_catalog, lint_info,
    AntipatternConfig, AntipatternFinding, AppliedFix, AutoFixReport, AutoFixResult, FixAction,
    LintInfo, RejectedFix, RuntimeProfile, SuggestedFix,
};
pub use context::AnalysisContext;
pub use diagnostic::{AnalysisReport, Diagnostic, Severity, Span};
pub use passes::{
    AnalysisPass, Analyzer, DeadImportPass, DeferralSafetyPass, DuplicateImportPass,
    ImportCyclePass, OverApproximationPass,
};
pub use safety::{boundary_imports, verify_deferral, verify_deferred_import, SafetyViolation};
pub use usage::ObservedUsage;
