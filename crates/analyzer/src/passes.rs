//! The analysis passes and the [`Analyzer`] driver.
//!
//! Each pass implements [`AnalysisPass`] and appends [`Diagnostic`]s to a
//! shared sink; the driver runs every registered pass over one
//! [`AnalysisContext`] and returns the sorted [`AnalysisReport`]. The five
//! default passes:
//!
//! | pass                | lint ids                                   |
//! |---------------------|--------------------------------------------|
//! | deferral safety     | `deferral-side-effects`, `deferral-parent-side-effects`, `deferral-touch-before-call`, `deferral-cycle` |
//! | dead imports        | `dead-import`                              |
//! | duplicate imports   | `redundant-import`, `shadowed-deferral`    |
//! | import cycles       | `import-cycle`                             |
//! | over-approximation  | `over-approximation`                       |
//!
//! The [`crate::antipattern`] module contributes six further passes (one
//! per anti-pattern lint id); [`Analyzer::with_antipattern_passes`]
//! registers all eleven:
//!
//! | pass                       | lint ids                     |
//! |----------------------------|------------------------------|
//! | eager-monolithic-init      | `eager-monolithic-init`      |
//! | oversized-dependency-tree  | `oversized-dependency-tree`  |
//! | init-in-handler            | `init-in-handler`            |
//! | missing-connection-reuse   | `missing-connection-reuse`   |
//! | unused-heavy-library       | `unused-heavy-library`       |
//! | handler-hot-import         | `handler-hot-import`         |

use std::collections::HashSet;

use slimstart_appmodel::source::CodeEdit;
use slimstart_appmodel::{Application, LibraryId, ModuleId};
use slimstart_faaslight::reachability::StaticAnalysis;
use slimstart_faaslight::strip_unreachable;
use slimstart_simcore::time::SimDuration;

use crate::context::{eager_closure, eager_closure_all_handlers, AnalysisContext};
use crate::diagnostic::{AnalysisReport, Diagnostic, Severity, Span};
use crate::safety::{boundary_imports, verify_deferral, verify_deferred_import};
use crate::usage::ObservedUsage;

/// One static-analysis pass.
pub trait AnalysisPass {
    /// Stable machine name of the pass.
    fn id(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// Runs the pass, appending findings to `out`.
    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Runs a configurable sequence of passes over an application.
#[derive(Default)]
pub struct Analyzer {
    passes: Vec<Box<dyn AnalysisPass>>,
}

impl Analyzer {
    /// An analyzer with no passes registered.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// The standard five-pass configuration.
    pub fn with_default_passes() -> Analyzer {
        let mut a = Analyzer::new();
        a.register(Box::new(DeferralSafetyPass));
        a.register(Box::new(DeadImportPass));
        a.register(Box::new(DuplicateImportPass));
        a.register(Box::new(ImportCyclePass));
        a.register(Box::new(OverApproximationPass));
        a
    }

    /// Adds a pass to the end of the sequence.
    pub fn register(&mut self, pass: Box<dyn AnalysisPass>) {
        self.passes.push(pass);
    }

    /// The registered passes, in execution order.
    pub fn passes(&self) -> &[Box<dyn AnalysisPass>] {
        &self.passes
    }

    /// Runs every pass over `app` and returns the sorted report. Passes
    /// that need profile data (the over-approximation auditor) are skipped
    /// silently when `usage` is `None`.
    pub fn analyze(&self, app: &Application, usage: Option<&ObservedUsage>) -> AnalysisReport {
        let ctx = AnalysisContext::new(app, usage);
        let mut report = AnalysisReport {
            app_name: app.name().to_string(),
            diagnostics: Vec::new(),
        };
        for pass in &self.passes {
            pass.run(&ctx, &mut report.diagnostics);
        }
        report.sort();
        report
    }
}

/// Pass 1: the deferral-safety verifier (see [`crate::safety`]).
///
/// Already-deferred imports that fail verification are **errors** — the
/// application as deployed reorders or hides side effects. Candidate
/// packages whose deferral *would* be unsafe are **warnings**: the
/// optimizer will refuse them, and the diagnostic explains why.
pub struct DeferralSafetyPass;

impl AnalysisPass for DeferralSafetyPass {
    fn id(&self) -> &'static str {
        "deferral-safety"
    }

    fn description(&self) -> &'static str {
        "verify deployed and candidate import deferrals preserve behaviour"
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let app = ctx.app;
        for (importer, decl) in app.all_imports() {
            if !decl.mode.is_deferred() {
                continue;
            }
            if let Err(v) = verify_deferred_import(app, importer, decl.target) {
                let imp = app.module(importer);
                let target = app.module(decl.target).name();
                out.push(Diagnostic {
                    lint_id: v.lint_id(),
                    severity: Severity::Error,
                    span: Span::new(imp.file(), decl.line),
                    message: format!("deployed deferred import of `{target}` is unsafe: {v}"),
                    suggestion: Some(CodeEdit {
                        file: imp.file().to_string(),
                        line: decl.line,
                        before: format!(
                            "# import {target}  # line {} (deferred by slimstart)",
                            decl.line
                        ),
                        after: format!("import {target}  # line {}", decl.line),
                        inserted: "eager import restored".to_string(),
                    }),
                });
            }
        }
        for node in ctx.tree.iter() {
            if boundary_imports(app, &node.path).is_empty() {
                continue;
            }
            if let Err(v) = verify_deferral(app, &node.path) {
                let (file, line) = {
                    let (f, l) = v.span();
                    (f.to_string(), l)
                };
                out.push(Diagnostic {
                    lint_id: v.lint_id(),
                    severity: Severity::Warning,
                    span: Span { file, line },
                    message: format!("candidate deferral of `{}` is unsafe: {v}", node.path),
                    suggestion: None,
                });
            }
        }
    }
}

/// Pass 2: dead global imports — the importer's functions never reach the
/// target subtree, the import is not a package re-export, and the subtree
/// is side-effect-free (so the import cannot exist *for* its effects).
pub struct DeadImportPass;

impl AnalysisPass for DeadImportPass {
    fn id(&self) -> &'static str {
        "dead-imports"
    }

    fn description(&self) -> &'static str {
        "find global imports whose target no function of the importer reaches"
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let app = ctx.app;
        let by_module = app.functions_by_module();
        for (importer, decl) in app.all_imports() {
            if !decl.mode.is_global() {
                continue;
            }
            let imp = app.module(importer);
            let target = app.module(decl.target);
            let tname = target.name();
            // Package re-exports (parent importing its own subtree) and
            // ancestor imports are structural, not use-driven.
            if target.in_package(imp.name()) || imp.in_package(tname) {
                continue;
            }
            // An import can exist solely for its side effects (plugin
            // registration); keep those.
            if app
                .modules()
                .iter()
                .any(|m| m.in_package(tname) && m.side_effectful())
            {
                continue;
            }
            let used = by_module[importer.index()]
                .iter()
                .any(|f| slimstart_appmodel::source::function_uses_package(app, *f, tname));
            if used {
                continue;
            }
            out.push(Diagnostic {
                lint_id: "dead-import",
                severity: Severity::Warning,
                span: Span::new(imp.file(), decl.line),
                message: format!(
                    "global import of `{tname}` is dead: no function in `{}` reaches it",
                    imp.name()
                ),
                suggestion: Some(CodeEdit {
                    file: imp.file().to_string(),
                    line: decl.line,
                    before: format!("import {tname}  # line {}", decl.line),
                    after: format!("# import {tname}  # removed (dead import)"),
                    inserted: "nothing — no use site exists".to_string(),
                }),
            });
        }
    }
}

/// Pass 3: duplicate and shadowed imports.
///
/// `redundant-import` (info): a global import whose target another global
/// import of the same module already loads (directly, transitively or as an
/// implicit parent). `shadowed-deferral` (warning): a deferred import whose
/// target still loads eagerly at cold start through some other path — the
/// deferral buys nothing.
pub struct DuplicateImportPass;

impl AnalysisPass for DuplicateImportPass {
    fn id(&self) -> &'static str {
        "duplicate-imports"
    }

    fn description(&self) -> &'static str {
        "find imports made redundant or shadowed by other imports"
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let app = ctx.app;
        let eager = eager_closure_all_handlers(app, |_, d| d.mode.is_global());
        for m in 0..app.modules().len() {
            let mid = ModuleId::from_index(m);
            let decls = app.imports_of(mid);
            for (i, d) in decls.iter().enumerate() {
                if d.mode.is_deferred() {
                    if eager[d.target.index()] {
                        let imp = app.module(mid);
                        let tname = app.module(d.target).name();
                        out.push(Diagnostic {
                            lint_id: "shadowed-deferral",
                            severity: Severity::Warning,
                            span: Span::new(imp.file(), d.line),
                            message: format!(
                                "deferred import of `{tname}` is shadowed: the module still \
                                 loads eagerly at cold start through another import path"
                            ),
                            suggestion: None,
                        });
                    }
                    continue;
                }
                for (j, d2) in decls.iter().enumerate() {
                    if i == j || !d2.mode.is_global() {
                        continue;
                    }
                    let cover = eager_closure(app, d2.target, |_, dd| dd.mode.is_global());
                    if !cover[d.target.index()] {
                        continue;
                    }
                    // Mutual cover (both load each other): keep the earlier
                    // declaration, flag the later one only.
                    let back = eager_closure(app, d.target, |_, dd| dd.mode.is_global());
                    if back[d2.target.index()] && (d.line, i) < (d2.line, j) {
                        continue;
                    }
                    let imp = app.module(mid);
                    let tname = app.module(d.target).name();
                    let other = app.module(d2.target).name();
                    out.push(Diagnostic {
                        lint_id: "redundant-import",
                        severity: Severity::Info,
                        span: Span::new(imp.file(), d.line),
                        message: format!(
                            "global import of `{tname}` is redundant: already loaded by \
                             `import {other}` (line {})",
                            d2.line
                        ),
                        suggestion: Some(CodeEdit {
                            file: imp.file().to_string(),
                            line: d.line,
                            before: format!("import {tname}  # line {}", d.line),
                            after: format!("# import {tname}  # removed (redundant)"),
                            inserted: format!("nothing — `import {other}` already loads it"),
                        }),
                    });
                    break;
                }
            }
        }
    }
}

/// Pass 4: import-cycle reporting with the full cycle path.
///
/// `AppBuilder::finish` rejects cycles among *global* imports, so any cycle
/// found here threads at least one deferred edge — legal to build, but a
/// re-entrant lazy load at runtime and a maintenance hazard.
pub struct ImportCyclePass;

impl AnalysisPass for ImportCyclePass {
    fn id(&self) -> &'static str {
        "import-cycles"
    }

    fn description(&self) -> &'static str {
        "report cycles in the import graph with their full path"
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let app = ctx.app;
        let n = app.modules().len();
        let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
        let mut path: Vec<ModuleId> = Vec::new();
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        for m in 0..n {
            if color[m] == 0 {
                dfs_cycles(
                    app,
                    ModuleId::from_index(m),
                    &mut color,
                    &mut path,
                    &mut seen,
                    out,
                );
            }
        }
    }
}

fn dfs_cycles(
    app: &Application,
    node: ModuleId,
    color: &mut [u8],
    path: &mut Vec<ModuleId>,
    seen: &mut HashSet<Vec<usize>>,
    out: &mut Vec<Diagnostic>,
) {
    color[node.index()] = 1;
    path.push(node);
    for decl in app.imports_of(node) {
        match color[decl.target.index()] {
            1 => {
                let pos = path
                    .iter()
                    .position(|p| *p == decl.target)
                    .expect("on-stack node is in path");
                let cycle: Vec<ModuleId> = path[pos..].to_vec();
                // Canonical form: rotate so the smallest index leads, so
                // each cycle is reported once no matter where DFS entered.
                let mut key: Vec<usize> = cycle.iter().map(|m| m.index()).collect();
                let min_at = key
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| **v)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                key.rotate_left(min_at);
                if seen.insert(key) {
                    let mut names: Vec<&str> =
                        cycle.iter().map(|m| app.module(*m).name()).collect();
                    names.push(app.module(decl.target).name());
                    out.push(Diagnostic {
                        lint_id: "import-cycle",
                        severity: Severity::Warning,
                        span: Span::new(app.module(node).file(), decl.line),
                        message: format!(
                            "import cycle through deferred edges: {}",
                            names.join(" -> ")
                        ),
                        suggestion: None,
                    });
                }
            }
            0 => dfs_cycles(app, decl.target, color, path, seen, out),
            _ => {}
        }
    }
    path.pop();
    color[node.index()] = 2;
}

/// Pass 5: the over-approximation auditor (the paper's Fig. 2 gap).
///
/// Diffs what static analysis keeps (FaaSLight reachability + stripping)
/// against what the dynamic profile observed: a library subtree that
/// survives static analysis but was never used in any profiled invocation
/// is pure static over-approximation — exactly the init cost profile-guided
/// deferral can remove and reachability cannot.
pub struct OverApproximationPass;

impl AnalysisPass for OverApproximationPass {
    fn id(&self) -> &'static str {
        "over-approximation"
    }

    fn description(&self) -> &'static str {
        "diff static reachability against profile-observed usage"
    }

    fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(usage) = ctx.usage else {
            return;
        };
        let app = ctx.app;
        let stripped = strip_unreachable(app);
        let analysis = StaticAnalysis::analyze(app);
        for (li, lib) in app.libraries().iter().enumerate() {
            let pinned = analysis.is_pinned(LibraryId::from_index(li));
            let mut stack = vec![lib.name().to_string()];
            while let Some(p) = stack.pop() {
                let Some(node) = ctx.tree.node(&p) else {
                    continue;
                };
                let modules = ctx.tree.modules_under(&p);
                // Subtrees FaaSLight already strips are not kept at all.
                let fully_stripped = !modules.is_empty()
                    && modules.iter().all(|m| stripped.app.module(*m).stripped());
                if fully_stripped {
                    continue;
                }
                if observed_fraction(usage, &p) == 0.0 {
                    let init = modules
                        .iter()
                        .map(|m| app.module(*m).init_cost())
                        .fold(SimDuration::ZERO, |a, b| a + b);
                    if init > SimDuration::ZERO {
                        let span = package_span(app, ctx, &p);
                        let pin_note = if pinned {
                            " (library pinned wholesale by an indirect call)"
                        } else {
                            ""
                        };
                        out.push(Diagnostic {
                            lint_id: "over-approximation",
                            severity: Severity::Info,
                            span,
                            message: format!(
                                "static analysis keeps `{p}` ({:.1} ms of init) but the \
                                 profile never observed it across {} invocations{pin_note}",
                                init.as_millis_f64(),
                                usage.total_runtime_samples
                            ),
                            suggestion: None,
                        });
                    }
                    // Report at the highest unused level only.
                    continue;
                }
                stack.extend(node.children.iter().cloned());
            }
        }
    }
}

/// Observed use fraction for `path`: the maximum over recorded keys at or
/// below `path`. Keys *above* it are not evidence — a profile that saw
/// `lib` (because `lib.hot` ran) says nothing about `lib.wdead`.
pub(crate) fn observed_fraction(usage: &ObservedUsage, path: &str) -> f64 {
    usage
        .by_package
        .iter()
        .filter(|(key, _)| covers(path, key))
        .fold(0.0, |acc, (_, frac)| acc.max(*frac))
}

/// Whether dotted path `outer` equals or contains `inner`.
pub(crate) fn covers(outer: &str, inner: &str) -> bool {
    inner == outer
        || (inner.len() > outer.len()
            && inner.starts_with(outer)
            && inner.as_bytes()[outer.len()] == b'.')
}

/// Best source span for a package path: its own module, else its first
/// member module, else a synthesized `__init__.py` path.
fn package_span(app: &Application, ctx: &AnalysisContext<'_>, path: &str) -> Span {
    if let Some(m) = app.module_by_name(path) {
        return Span::new(app.module(m).file(), 1);
    }
    if let Some(m) = ctx.tree.modules_under(path).first() {
        return Span::new(app.module(*m).file(), 1);
    }
    Span::new(format!("{}/__init__.py", path.replace('.', "/")), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_appmodel::ImportMode;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn run_pass(pass: &dyn AnalysisPass, app: &Application) -> Vec<Diagnostic> {
        let ctx = AnalysisContext::new(app, None);
        let mut out = Vec::new();
        pass.run(&ctx, &mut out);
        out
    }

    #[test]
    fn default_analyzer_has_five_passes() {
        let a = Analyzer::with_default_passes();
        let ids: Vec<&str> = a.passes().iter().map(|p| p.id()).collect();
        assert_eq!(
            ids,
            vec![
                "deferral-safety",
                "dead-imports",
                "duplicate-imports",
                "import-cycles",
                "over-approximation"
            ]
        );
    }

    #[test]
    fn dead_import_is_flagged_with_removal_edit() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let dead = b.add_library("deadlib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        let d = b.add_library_module("deadlib", ms(1), 0, false, dead);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(h, d, 3, ImportMode::Global).unwrap();
        let api = b.add_function("lib.api", root, 1, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(api),
            }],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let out = run_pass(&DeadImportPass, &app);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint_id, "dead-import");
        assert!(out[0].message.contains("deadlib"));
        assert!(out[0].suggestion.is_some());
        // The used import is not flagged.
        assert!(!out.iter().any(|d| d.message.contains("`lib`")));
    }

    #[test]
    fn side_effectful_import_is_not_dead() {
        let mut b = AppBuilder::new("t");
        let plug = b.add_library("plugins");
        let h = b.add_app_module("handler", ms(1), 0);
        let p = b.add_library_module("plugins", ms(1), 0, true, plug);
        b.add_import(h, p, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        assert!(run_pass(&DeadImportPass, &app).is_empty());
    }

    #[test]
    fn redundant_ancestor_import_is_flagged_on_later_line() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        let sub = b.add_library_module("lib.sub", ms(1), 0, false, lib);
        // `import lib.sub` (line 2) already loads `lib` as its parent, so
        // `import lib` (line 3) is redundant.
        b.add_import(h, sub, 2, ImportMode::Global).unwrap();
        b.add_import(h, root, 3, ImportMode::Global).unwrap();
        let api = b.add_function("lib.api", sub, 1, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(api),
            }],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let out = run_pass(&DuplicateImportPass, &app);
        let redundant: Vec<_> = out
            .iter()
            .filter(|d| d.lint_id == "redundant-import")
            .collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].span.line, 3);
        assert_eq!(redundant[0].severity, Severity::Info);
    }

    #[test]
    fn shadowed_deferral_is_flagged() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        let sub = b.add_library_module("lib.sub", ms(1), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, sub, 1, ImportMode::Global).unwrap();
        // Deferring h -> lib.sub is pointless: lib.sub still loads eagerly
        // through lib's own global import.
        b.add_import(h, sub, 3, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let out = run_pass(&DuplicateImportPass, &app);
        let shadowed: Vec<_> = out
            .iter()
            .filter(|d| d.lint_id == "shadowed-deferral")
            .collect();
        assert_eq!(shadowed.len(), 1);
        assert_eq!(shadowed[0].severity, Severity::Warning);
    }

    #[test]
    fn import_cycle_reports_full_path_once() {
        let mut b = AppBuilder::new("t");
        let la = b.add_library("liba");
        let lb = b.add_library("libb");
        let h = b.add_app_module("handler", ms(1), 0);
        let a = b.add_library_module("liba", ms(1), 0, false, la);
        let bm = b.add_library_module("libb", ms(1), 0, false, lb);
        b.add_import(h, a, 2, ImportMode::Global).unwrap();
        b.add_import(a, bm, 1, ImportMode::Global).unwrap();
        b.add_import(bm, a, 1, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let out = run_pass(&ImportCyclePass, &app);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint_id, "import-cycle");
        assert!(
            out[0].message.contains("liba -> libb -> liba")
                || out[0].message.contains("libb -> liba -> libb"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn acyclic_graph_reports_nothing() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        assert!(run_pass(&ImportCyclePass, &app).is_empty());
    }

    #[test]
    fn deferral_safety_pass_warns_on_unsafe_candidates_and_errors_on_deployed() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let _root = b.add_library_module("lib", ms(1), 0, true, lib);
        let sub = b.add_library_module("lib.sub", ms(1), 0, false, lib);
        // A deployed deferral whose lazy closure drags in the side-effectful
        // root that nothing loads eagerly.
        b.add_import(h, sub, 2, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let out = run_pass(&DeferralSafetyPass, &app);
        assert!(out
            .iter()
            .any(|d| d.severity == Severity::Error && d.lint_id == "deferral-parent-side-effects"));
    }

    #[test]
    fn over_approximation_reports_unused_kept_subtrees() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        let hot = b.add_library_module("lib.hot", ms(5), 0, false, lib);
        let wdead = b.add_library_module("lib.wdead", ms(40), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 1, ImportMode::Global).unwrap();
        b.add_import(root, wdead, 2, ImportMode::Global).unwrap();
        let f_hot = b.add_function("hot_fn", hot, 1, vec![]);
        let f_dead = b.add_function("wdead_fn", wdead, 1, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_hot),
            }],
        );
        let g = b.add_function(
            "admin",
            h,
            20,
            vec![Stmt {
                line: 21,
                kind: StmtKind::call(f_dead),
            }],
        );
        b.add_handler("main", f);
        b.add_handler("admin", g);
        let app = b.finish().unwrap();

        // Profile: lib and lib.hot observed; lib.wdead never (the admin
        // handler exists but the workload never invokes it — Fig. 2's gap).
        let mut usage = ObservedUsage {
            total_runtime_samples: 500,
            by_package: Default::default(),
        };
        usage.by_package.insert("lib".into(), 1.0);
        usage.by_package.insert("lib.hot".into(), 1.0);

        let ctx = AnalysisContext::new(&app, Some(&usage));
        let mut out = Vec::new();
        OverApproximationPass.run(&ctx, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint_id, "over-approximation");
        assert!(out[0].message.contains("lib.wdead"));
        assert!(out[0].message.contains("500 invocations"));
        assert_eq!(out[0].severity, Severity::Info);
    }

    #[test]
    fn over_approximation_needs_usage() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        assert!(run_pass(&OverApproximationPass, &app).is_empty());
    }

    #[test]
    fn analyze_sorts_and_names_the_report() {
        let mut b = AppBuilder::new("demo");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let _root = b.add_library_module("lib", ms(1), 0, true, lib);
        let sub = b.add_library_module("lib.sub", ms(1), 0, false, lib);
        b.add_import(h, sub, 2, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let report = Analyzer::with_default_passes().analyze(&app, None);
        assert_eq!(report.app_name, "demo");
        assert!(report.has_errors());
        for w in report.diagnostics.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
    }
}
