//! Profile-observed usage, as the analyzer consumes it.
//!
//! The over-approximation auditor diffs *static* reachability against what
//! the dynamic profile actually saw. The profiler lives above this crate
//! (in `slimstart-core`), so the analyzer defines its own minimal view and
//! the profiler converts into it — keeping the dependency arrow pointing
//! the right way.

use std::collections::BTreeMap;

/// Package-granular usage observed during a profiling run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservedUsage {
    /// How many sampled invocations the profile covers.
    pub total_runtime_samples: u64,
    /// Fraction of invocations that used each package subtree, keyed by
    /// dotted package path (e.g. `nltk.sem`). Absent paths were never used.
    pub by_package: BTreeMap<String, f64>,
}

impl ObservedUsage {
    /// Observed use fraction for a package path; 0.0 when never observed.
    pub fn package(&self, path: &str) -> f64 {
        self.by_package.get(path).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_package_reads_as_unused() {
        let mut usage = ObservedUsage {
            total_runtime_samples: 100,
            by_package: BTreeMap::new(),
        };
        usage.by_package.insert("lib.hot".into(), 0.9);
        assert_eq!(usage.package("lib.hot"), 0.9);
        assert_eq!(usage.package("lib.cold"), 0.0);
    }
}
