//! Shared analysis context: precomputed views over the application model.
//!
//! The context carries the package tree and the *parent-aware* eager-load
//! closure used by several passes. The closure mirrors the runtime
//! (`pyrt`) exactly: loading a module first loads its ancestor packages —
//! whether or not an import declaration names them — and then executes its
//! global imports transitively. `Application::eager_load_set` follows
//! import edges only, so it misses implicitly-loaded parents; safety
//! verification must not.

use slimstart_appmodel::library::PackageTree;
use slimstart_appmodel::{Application, ImportDecl, ModuleId};

use crate::usage::ObservedUsage;

/// Precomputed state shared by all passes of one analyzer run.
pub struct AnalysisContext<'a> {
    /// The application under analysis.
    pub app: &'a Application,
    /// Its package tree.
    pub tree: PackageTree,
    /// Profile-observed usage, when a profile is available (required by the
    /// over-approximation auditor; ignored by the structural passes).
    pub usage: Option<&'a ObservedUsage>,
}

impl<'a> AnalysisContext<'a> {
    /// Builds the context for `app`.
    pub fn new(app: &'a Application, usage: Option<&'a ObservedUsage>) -> AnalysisContext<'a> {
        AnalysisContext {
            app,
            tree: app.package_tree(),
            usage,
        }
    }

    /// The union of [`eager_closure`] over every handler's module — the set
    /// of modules the runtime loads at cold start, for any entry point.
    pub fn eager_closure_all_handlers(&self) -> Vec<bool> {
        eager_closure_all_handlers(self.app, |_, decl| decl.mode.is_global())
    }
}

/// Parent-aware eager-load closure from `root`, where `is_global` decides
/// whether an import edge participates (pass the declaration's real mode to
/// model the app as written, or override edges to simulate a hypothetical
/// deferral without cloning the application).
///
/// Returns one flag per module index.
pub fn eager_closure<F>(app: &Application, root: ModuleId, is_global: F) -> Vec<bool>
where
    F: Fn(ModuleId, &ImportDecl) -> bool,
{
    let mut loaded = vec![false; app.modules().len()];
    let mut stack = vec![root];
    while let Some(m) = stack.pop() {
        if loaded[m.index()] {
            continue;
        }
        loaded[m.index()] = true;
        // Ancestor packages load first, exactly as the runtime's
        // load-with-parents does — even without an import edge to them.
        if let Some(parent) = app.module(m).parent_package() {
            if let Some(p) = app.module_by_name(parent) {
                if !loaded[p.index()] {
                    stack.push(p);
                }
            }
        }
        for decl in app.imports_of(m) {
            if is_global(m, decl) && !loaded[decl.target.index()] {
                stack.push(decl.target);
            }
        }
    }
    loaded
}

/// Union of [`eager_closure`] over every handler's module.
pub fn eager_closure_all_handlers<F>(app: &Application, is_global: F) -> Vec<bool>
where
    F: Fn(ModuleId, &ImportDecl) -> bool,
{
    let mut loaded = vec![false; app.modules().len()];
    for handler in app.handlers() {
        let root = app.handler_module(
            app.handler_by_name(handler.name())
                .expect("handler exists by construction"),
        );
        for (i, flag) in eager_closure(app, root, &is_global).iter().enumerate() {
            if *flag {
                loaded[i] = true;
            }
        }
    }
    loaded
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::ImportMode;
    use slimstart_simcore::time::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler imports lib.sub.deep directly; lib and lib.sub have no
    /// import edges pointing at them at all.
    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let _root = b.add_library_module("lib", ms(5), 0, true, lib);
        let _sub = b.add_library_module("lib.sub", ms(2), 0, false, lib);
        let deep = b.add_library_module("lib.sub.deep", ms(3), 0, false, lib);
        b.add_import(h, deep, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    #[test]
    fn closure_includes_implicit_parents() {
        let app = app();
        let h = app.module_by_name("handler").unwrap();
        let closure = eager_closure(&app, h, |_, d| d.mode.is_global());
        for name in ["handler", "lib", "lib.sub", "lib.sub.deep"] {
            let m = app.module_by_name(name).unwrap();
            assert!(closure[m.index()], "{name} must be in the eager closure");
        }
        // The import-edge-only closure misses the parents — the exact gap
        // this module exists to close.
        let edge_only = app.eager_load_set(h);
        let root = app.module_by_name("lib").unwrap();
        assert!(!edge_only.contains(&root));
    }

    #[test]
    fn deferred_override_removes_subtree() {
        let app = app();
        let h = app.module_by_name("handler").unwrap();
        let deep = app.module_by_name("lib.sub.deep").unwrap();
        let closure = eager_closure(&app, h, |_, d| d.mode.is_global() && d.target != deep);
        assert!(closure[h.index()]);
        for name in ["lib", "lib.sub", "lib.sub.deep"] {
            let m = app.module_by_name(name).unwrap();
            assert!(!closure[m.index()], "{name} must leave the closure");
        }
    }

    #[test]
    fn all_handlers_union() {
        let app = app();
        let loaded = AnalysisContext::new(&app, None).eager_closure_all_handlers();
        assert_eq!(loaded.iter().filter(|x| **x).count(), 4);
    }
}
