//! Structured diagnostics and their renderers.
//!
//! Every pass emits [`Diagnostic`] values: a stable lint id, a severity, a
//! source span projected from the application model (`file:line`), a
//! human-readable message and — where a mechanical fix exists — a suggested
//! [`CodeEdit`]. An [`AnalysisReport`] collects the diagnostics of one
//! analyzer run and renders them as compiler-style text or as JSON (the
//! same hand-rolled writer style as `slimstart-core`'s exporters, so the
//! workspace stays free of a JSON dependency).

use std::fmt;

use slimstart_appmodel::source::CodeEdit;

/// Diagnostic severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: quantifies a gap or an opportunity, not a defect.
    Info,
    /// A likely defect or anti-pattern that does not break the app.
    Warning,
    /// A correctness problem in the application as deployed.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A source location in the projected Python-like source model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Span {
    /// File path, e.g. `nltk/sem/__init__.py`.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl Span {
    /// Convenience constructor.
    pub fn new(file: impl Into<String>, line: u32) -> Span {
        Span {
            file: file.into(),
            line,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One finding of one analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint identifier (e.g. `dead-import`) — CI configuration and
    /// tests key on this, so ids never change meaning between releases.
    pub lint_id: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it is.
    pub span: Span,
    /// What it is.
    pub message: String,
    /// A mechanical fix, when one exists.
    pub suggestion: Option<CodeEdit>,
}

/// The collected output of one [`crate::Analyzer`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Name of the analyzed application.
    pub app_name: String,
    /// All diagnostics, sorted most-severe first, then by span.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of info-severity diagnostics.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any diagnostic is an error — the CI-gate condition.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Diagnostics carrying a given lint id.
    pub fn with_lint<'a>(&'a self, lint_id: &'a str) -> impl Iterator<Item = &'a Diagnostic> + 'a {
        self.diagnostics
            .iter()
            .filter(move |d| d.lint_id == lint_id)
    }

    /// Sorts diagnostics most-severe first, then by file, line, lint id
    /// and finally message, so the ordering is a total order and renders
    /// (text, JSON, goldens) are byte-identical across runs — even when
    /// one pass emits several diagnostics for the same lint at the same
    /// span.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.span.file.cmp(&b.span.file))
                .then_with(|| a.span.line.cmp(&b.span.line))
                .then_with(|| a.lint_id.cmp(b.lint_id))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Renders the report as compiler-style text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}[{}] {}: {}",
                d.severity, d.lint_id, d.span, d.message
            );
            if let Some(edit) = &d.suggestion {
                for line in edit.to_string().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} info(s)",
            self.app_name,
            self.error_count(),
            self.warning_count(),
            self.info_count()
        );
        out
    }

    /// Renders the report as a JSON document.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"app\": \"{}\",\n  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n  \"diagnostics\": [",
            escape(&self.app_name),
            self.error_count(),
            self.warning_count(),
            self.info_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            let comma = if i + 1 < self.diagnostics.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                out,
                "\n    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"suggestion\": {}}}{comma}",
                escape(d.lint_id),
                d.severity,
                escape(&d.span.file),
                d.span.line,
                escape(&d.message),
                match &d.suggestion {
                    None => "null".to_string(),
                    Some(e) => format!(
                        "{{\"file\": \"{}\", \"line\": {}, \"before\": \"{}\", \"after\": \"{}\", \"inserted\": \"{}\"}}",
                        escape(&e.file),
                        e.line,
                        escape(&e.before),
                        escape(&e.after),
                        escape(&e.inserted)
                    ),
                }
            );
        }
        if self.diagnostics.is_empty() {
            let _ = write!(out, "]\n}}");
        } else {
            let _ = write!(out, "\n  ]\n}}");
        }
        out
    }
}

/// Escapes a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AnalysisReport {
        AnalysisReport {
            app_name: "demo".into(),
            diagnostics: vec![
                Diagnostic {
                    lint_id: "dead-import",
                    severity: Severity::Warning,
                    span: Span::new("handler.py", 3),
                    message: "global import of `xmlschema` is dead".into(),
                    suggestion: Some(CodeEdit {
                        file: "handler.py".into(),
                        line: 3,
                        before: "import xmlschema".into(),
                        after: "# import xmlschema".into(),
                        inserted: "nothing".into(),
                    }),
                },
                Diagnostic {
                    lint_id: "deferral-side-effects",
                    severity: Severity::Error,
                    span: Span::new("lib/__init__.py", 1),
                    message: "unsafe deferral".into(),
                    suggestion: None,
                },
            ],
        }
    }

    #[test]
    fn counts_by_severity() {
        let r = report();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.info_count(), 0);
        assert!(r.has_errors());
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = report();
        r.sort();
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.diagnostics[1].severity, Severity::Warning);
    }

    #[test]
    fn sort_is_a_total_order_with_message_tiebreak() {
        let d = |msg: &str| Diagnostic {
            lint_id: "dead-import",
            severity: Severity::Warning,
            span: Span::new("handler.py", 3),
            message: msg.into(),
            suggestion: None,
        };
        // Same severity, span and lint id — only the message differs.
        let mut r1 = AnalysisReport {
            app_name: "demo".into(),
            diagnostics: vec![d("b"), d("a"), d("c")],
        };
        let mut r2 = AnalysisReport {
            app_name: "demo".into(),
            diagnostics: vec![d("c"), d("b"), d("a")],
        };
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
        assert_eq!(r1.render_json(), r2.render_json());
        let msgs: Vec<&str> = r1.diagnostics.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs, ["a", "b", "c"]);
    }

    #[test]
    fn text_render_includes_span_and_summary() {
        let text = report().render_text();
        assert!(text.contains("warning[dead-import] handler.py:3:"));
        assert!(text.contains("error[deferral-side-effects] lib/__init__.py:1:"));
        assert!(text.contains("demo: 1 error(s), 1 warning(s), 0 info(s)"));
    }

    #[test]
    fn json_render_is_well_formed() {
        let json = report().render_json();
        assert!(json.contains("\"app\": \"demo\""));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"lint\": \"dead-import\""));
        assert!(json.contains("\"suggestion\": {\"file\": \"handler.py\""));
        assert!(json.contains("\"suggestion\": null"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn with_lint_filters() {
        let r = report();
        assert_eq!(r.with_lint("dead-import").count(), 1);
        assert_eq!(r.with_lint("nope").count(), 0);
    }
}
