//! The anti-pattern lint catalog and the verifier-gated auto-fixer.
//!
//! "Cold-Start Anti-Patterns and Refactorings in Serverless Systems"
//! catalogs the application-level mistakes that dominate real FaaS latency;
//! this module turns that catalog into executable lints over the
//! application model, each paired with a mechanical [`SuggestedFix`]:
//!
//! | lint id                    | fix action                              |
//! |----------------------------|-----------------------------------------|
//! | `eager-monolithic-init`    | defer the heavy, partially-used package |
//! | `oversized-dependency-tree`| defer the never-used module subtree     |
//! | `init-in-handler`          | restore the eager import                |
//! | `missing-connection-reuse` | advisory: hoist the client to module scope |
//! | `unused-heavy-library`     | defer the whole library                 |
//! | `handler-hot-import`       | restore the eager import                |
//!
//! Costs are ranked through a per-runtime [`RuntimeProfile`] (stage-profiler
//! style: per-module import overhead, init-cost scaling, lazy-load penalty,
//! connection setup), so the same lint can be a warning under CPython and
//! informational under Node. [`auto_fix`] applies only fixes the deferral-
//! safety verifier approves, re-runs the analyzer to prove convergence (no
//! new errors, fixed lint instances gone) and keeps a fix only when the
//! modeled cold start does not regress; `slimstart-core`'s `AutoFixStage`
//! then re-measures the result through the simulation.

use std::collections::BTreeSet;

use slimstart_appmodel::function::{Stmt, StmtKind};
use slimstart_appmodel::source::{function_uses_package, CodeEdit};
use slimstart_appmodel::{Application, FunctionId, ImportMode, ModuleId};
use slimstart_faaslight::reachability::handlers_reaching_package;

use crate::context::eager_closure;
use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, Severity, Span};
use crate::passes::{covers, observed_fraction, AnalysisPass, Analyzer};
use crate::safety::{boundary_imports, verify_deferral};
use crate::usage::ObservedUsage;

// ------------------------------------------------------------ cost model

/// Per-runtime cold-start cost profile: how expensive module imports,
/// top-level init, lazy loads and connection setup are on this runtime.
/// The same structural finding ranks differently per runtime — a 100 ms
/// package is a warning on CPython and noise on a JVM whose baseline cold
/// start dwarfs it.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeProfile {
    /// Runtime name (`python`, `nodejs`, `java`).
    pub name: &'static str,
    /// Fixed per-module import machinery overhead, ms (finding/compiling/
    /// executing one module file).
    pub per_module_import_ms: f64,
    /// Multiplier applied to modeled top-level init costs.
    pub init_cost_factor: f64,
    /// Penalty factor (≥ 1) for loading a module lazily inside a request
    /// instead of during init (cold caches, no snapshot reuse).
    pub lazy_load_penalty: f64,
    /// Cost of establishing one client/connection, ms.
    pub connection_setup_ms: f64,
    /// Modeled cost at or above which a finding is promoted from info to
    /// warning on this runtime.
    pub warn_cost_ms: f64,
}

impl RuntimeProfile {
    /// CPython: moderate import machinery, every init ms counts.
    pub fn python() -> RuntimeProfile {
        RuntimeProfile {
            name: "python",
            per_module_import_ms: 0.8,
            init_cost_factor: 1.0,
            lazy_load_penalty: 1.15,
            connection_setup_ms: 45.0,
            warn_cost_ms: 100.0,
        }
    }

    /// Node.js: cheap module loads, small cold starts — small absolute
    /// costs already matter.
    pub fn nodejs() -> RuntimeProfile {
        RuntimeProfile {
            name: "nodejs",
            per_module_import_ms: 0.25,
            init_cost_factor: 0.6,
            lazy_load_penalty: 1.05,
            connection_setup_ms: 30.0,
            warn_cost_ms: 50.0,
        }
    }

    /// JVM: expensive class loading, but a baseline cold start so large
    /// that only big findings are worth warning about.
    pub fn java() -> RuntimeProfile {
        RuntimeProfile {
            name: "java",
            per_module_import_ms: 2.0,
            init_cost_factor: 1.8,
            lazy_load_penalty: 1.4,
            connection_setup_ms: 120.0,
            warn_cost_ms: 250.0,
        }
    }

    /// Looks up a profile by runtime name.
    pub fn by_name(name: &str) -> Option<RuntimeProfile> {
        match name {
            "python" => Some(RuntimeProfile::python()),
            "nodejs" | "node" => Some(RuntimeProfile::nodejs()),
            "java" => Some(RuntimeProfile::java()),
            _ => None,
        }
    }

    /// Severity for a finding whose modeled cost is `cost_ms`.
    fn severity_for(&self, cost_ms: f64) -> Severity {
        if cost_ms >= self.warn_cost_ms {
            Severity::Warning
        } else {
            Severity::Info
        }
    }
}

impl Default for RuntimeProfile {
    fn default() -> Self {
        RuntimeProfile::python()
    }
}

/// Thresholds for the anti-pattern passes.
#[derive(Debug, Clone, PartialEq)]
pub struct AntipatternConfig {
    /// The runtime cost profile findings are ranked against.
    pub runtime: RuntimeProfile,
    /// `eager-monolithic-init` fires only when total modeled eager init
    /// meets this floor, ms.
    pub monolithic_init_ms: f64,
    /// … and flags packages contributing at least this share of it.
    pub monolithic_share: f64,
    /// `oversized-dependency-tree` flags unused eager subtrees with at
    /// least this many modules.
    pub oversized_modules: usize,
    /// `missing-connection-reuse` flags runs of at least this many
    /// consecutive identical library calls per invocation.
    pub redundant_calls: usize,
    /// `unused-heavy-library` flags unused libraries whose modeled eager
    /// cost meets this floor, ms.
    pub heavy_library_ms: f64,
    /// `handler-hot-import` flags deferred packages observed in at least
    /// this fraction of profiled invocations.
    pub hot_fraction: f64,
}

impl Default for AntipatternConfig {
    fn default() -> Self {
        AntipatternConfig {
            runtime: RuntimeProfile::default(),
            monolithic_init_ms: 250.0,
            monolithic_share: 0.05,
            oversized_modules: 64,
            redundant_calls: 4,
            heavy_library_ms: 80.0,
            hot_fraction: 0.5,
        }
    }
}

impl AntipatternConfig {
    /// Swaps in a different runtime cost profile.
    #[must_use]
    pub fn with_runtime(mut self, runtime: RuntimeProfile) -> Self {
        self.runtime = runtime;
        self
    }
}

// ------------------------------------------------------------- estimator

/// Modeled mean cold-start cost over all handlers, ms, under a runtime
/// profile: eager init (scaled, plus per-module import overhead) plus the
/// penalized cost of deferred closures the handler statically uses. This
/// is the ranking and regression-gating metric of [`auto_fix`]; the
/// simulation provides the authoritative measurement afterwards.
pub fn estimated_cold_start_ms(app: &Application, rt: &RuntimeProfile) -> f64 {
    let handlers = app.handlers();
    if handlers.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for h in handlers {
        let root = app.function(h.function()).module();
        let mut loaded = eager_closure(app, root, |_, d| d.mode.is_global());
        let mut cost = 0.0;
        for (i, m) in app.modules().iter().enumerate() {
            if loaded[i] {
                cost +=
                    m.init_cost().as_millis_f64() * rt.init_cost_factor + rt.per_module_import_ms;
            }
        }
        // Deferred imports fire at first use inside the request; iterate to
        // a fixpoint so chained deferrals (a lazy load whose importer only
        // appears through an earlier lazy load) are charged too.
        loop {
            let mut changed = false;
            for (importer, decl) in app.all_imports() {
                if !decl.mode.is_deferred()
                    || !loaded[importer.index()]
                    || loaded[decl.target.index()]
                {
                    continue;
                }
                let tname = app.module(decl.target).name();
                if !function_uses_package(app, h.function(), tname) {
                    continue;
                }
                let lazy = eager_closure(app, decl.target, |_, d| d.mode.is_global());
                let mut lazy_cost = 0.0;
                for (i, m) in app.modules().iter().enumerate() {
                    if lazy[i] && !loaded[i] {
                        lazy_cost += m.init_cost().as_millis_f64() * rt.init_cost_factor
                            + rt.per_module_import_ms;
                        loaded[i] = true;
                    }
                }
                cost += lazy_cost * rt.lazy_load_penalty;
                changed = true;
            }
            if !changed {
                break;
            }
        }
        total += cost;
    }
    total / handlers.len() as f64
}

/// Modeled cost of loading every member of `members` that is flagged in
/// the per-module bitmap.
fn member_cost(app: &Application, members: &[ModuleId], rt: &RuntimeProfile) -> f64 {
    members
        .iter()
        .map(|m| {
            app.module(*m).init_cost().as_millis_f64() * rt.init_cost_factor
                + rt.per_module_import_ms
        })
        .sum()
}

// ------------------------------------------------------------------ fixes

/// The mechanical action a [`SuggestedFix`] performs on the model.
#[derive(Debug, Clone, PartialEq)]
pub enum FixAction {
    /// Flip every global boundary import into `package` to deferred (the
    /// optimizer's rewrite, driven by a lint instead of a profile).
    DeferPackage {
        /// Dotted path of the package to defer.
        package: String,
    },
    /// Flip an existing deferred import back to a global (eager) import.
    RestoreEager {
        /// Dotted name of the importing module.
        importer: String,
        /// Dotted name of the imported module.
        target: String,
    },
    /// A source-level refactoring the model cannot perform mechanically
    /// (e.g. hoisting a client to module scope); the edit is advisory.
    Advisory,
}

impl FixAction {
    /// Whether [`FixAction::apply`] can mutate the model at all.
    pub fn is_applicable(&self) -> bool {
        !matches!(self, FixAction::Advisory)
    }

    /// Stable dedup key: two findings proposing the same action collapse
    /// into one application.
    pub fn key(&self) -> String {
        match self {
            FixAction::DeferPackage { package } => format!("defer:{package}"),
            FixAction::RestoreEager { importer, target } => format!("eager:{importer}->{target}"),
            FixAction::Advisory => "advisory".to_string(),
        }
    }

    /// Human-readable description of the action.
    pub fn describe(&self) -> String {
        match self {
            FixAction::DeferPackage { package } => format!("defer `{package}`"),
            FixAction::RestoreEager { importer, target } => {
                format!("restore eager import of `{target}` in `{importer}`")
            }
            FixAction::Advisory => "advisory refactoring".to_string(),
        }
    }

    /// Applies the action to `app`. Returns `false` for a no-op (advisory
    /// fixes, stale names, already-applied rewrites).
    pub fn apply(&self, app: &mut Application) -> bool {
        match self {
            FixAction::DeferPackage { package } => {
                let boundary = boundary_imports(app, package);
                if boundary.is_empty() {
                    return false;
                }
                for (importer, target, _) in boundary {
                    app.set_import_mode(importer, target, ImportMode::Deferred);
                }
                true
            }
            FixAction::RestoreEager { importer, target } => {
                let (Some(i), Some(t)) = (app.module_by_name(importer), app.module_by_name(target))
                else {
                    return false;
                };
                let deferred = app
                    .imports_of(i)
                    .iter()
                    .any(|d| d.target == t && d.mode.is_deferred());
                deferred && app.set_import_mode(i, t, ImportMode::Global)
            }
            FixAction::Advisory => false,
        }
    }
}

/// A lint's paired refactoring: the model-level action, the projected
/// source edit, and the modeled saving under the configured runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct SuggestedFix {
    /// The lint this fix belongs to.
    pub lint_id: &'static str,
    /// The model-level rewrite.
    pub action: FixAction,
    /// The projected source-level edit (what a human would commit).
    pub edit: CodeEdit,
    /// Modeled mean cold-start saving if applied, ms (may be negative for
    /// fixes that trade init for request latency).
    pub estimated_saving_ms: f64,
}

/// One anti-pattern finding: the diagnostic plus its paired fix.
#[derive(Debug, Clone, PartialEq)]
pub struct AntipatternFinding {
    /// The rendered diagnostic (its `suggestion` carries the fix's edit).
    pub diagnostic: Diagnostic,
    /// The paired fix.
    pub fix: SuggestedFix,
}

/// Modeled saving of applying `action` to `app`: estimator delta against a
/// scratch clone.
fn saving_of(app: &Application, action: &FixAction, rt: &RuntimeProfile) -> f64 {
    let mut scratch = app.clone();
    if !action.apply(&mut scratch) {
        return 0.0;
    }
    estimated_cold_start_ms(app, rt) - estimated_cold_start_ms(&scratch, rt)
}

fn finding(
    lint_id: &'static str,
    severity: Severity,
    span: Span,
    message: String,
    action: FixAction,
    edit: CodeEdit,
    estimated_saving_ms: f64,
) -> AntipatternFinding {
    AntipatternFinding {
        diagnostic: Diagnostic {
            lint_id,
            severity,
            span,
            message,
            suggestion: Some(edit.clone()),
        },
        fix: SuggestedFix {
            lint_id,
            action,
            edit,
            estimated_saving_ms,
        },
    }
}

/// The edit the deferral rewrite would commit at the first boundary import.
fn defer_edit(app: &Application, package: &str) -> Option<(Span, CodeEdit)> {
    let (importer, target, line) = boundary_imports(app, package).into_iter().next()?;
    let file = app.module(importer).file().to_string();
    let tname = app.module(target).name();
    Some((
        Span::new(file.clone(), line),
        CodeEdit {
            file,
            line,
            before: format!("import {tname}"),
            after: format!("# import {tname}  # deferred by slimstart"),
            inserted: format!("import {tname} at its first use site (profile-guided deferral)"),
        },
    ))
}

/// The edit restoring a deferred import to eager.
fn restore_edit(app: &Application, importer: ModuleId, target: ModuleId, line: u32) -> CodeEdit {
    let tname = app.module(target).name();
    CodeEdit {
        file: app.module(importer).file().to_string(),
        line,
        before: format!("# import {tname}  # line {line} (deferred by slimstart)"),
        after: format!("import {tname}  # line {line}"),
        inserted: "eager import restored — the load belongs in init, not the request".to_string(),
    }
}

// -------------------------------------------------------------- detectors

/// `eager-monolithic-init`: the application's init is dominated by one
/// eager package that at least one handler never needs — classic
/// monolithic initialization, fixed by deferring the package's boundary
/// imports.
fn detect_eager_monolithic(
    ctx: &AnalysisContext<'_>,
    cfg: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let app = ctx.app;
    let rt = &cfg.runtime;
    let eager = ctx.eager_closure_all_handlers();
    let eager_members: Vec<ModuleId> = (0..app.modules().len())
        .filter(|i| eager[*i])
        .map(ModuleId::from_index)
        .collect();
    let total = member_cost(app, &eager_members, rt);
    if total < cfg.monolithic_init_ms {
        return Vec::new();
    }
    let handler_fns: Vec<FunctionId> = app.handlers().iter().map(|h| h.function()).collect();
    let mut out = Vec::new();
    let mut claimed: Vec<String> = Vec::new();
    for node in ctx.tree.iter() {
        if claimed.iter().any(|c| covers(c, &node.path)) {
            continue;
        }
        let modules = ctx.tree.modules_under(&node.path);
        if modules.is_empty()
            || !modules.iter().all(|m| eager[m.index()])
            || !modules.iter().all(|m| app.module(*m).library().is_some())
        {
            continue;
        }
        let pkg_cost = member_cost(app, &modules, rt);
        if pkg_cost < cfg.monolithic_share * total {
            continue;
        }
        let unused = handler_fns
            .iter()
            .filter(|f| !function_uses_package(app, **f, &node.path))
            .count();
        if unused == 0 || verify_deferral(app, &node.path).is_err() {
            continue;
        }
        let Some((span, edit)) = defer_edit(app, &node.path) else {
            continue;
        };
        claimed.push(node.path.clone());
        let action = FixAction::DeferPackage {
            package: node.path.clone(),
        };
        let saving = saving_of(app, &action, rt);
        out.push(finding(
            "eager-monolithic-init",
            rt.severity_for(pkg_cost),
            span,
            format!(
                "monolithic init: `{}` contributes {:.1} ms of {:.1} ms modeled cold-start \
                 init ({}), but {unused} of {} handler(s) never use it",
                node.path,
                pkg_cost,
                total,
                rt.name,
                handler_fns.len()
            ),
            action,
            edit,
            saving,
        ));
    }
    out
}

/// `oversized-dependency-tree`: an eagerly-loaded subtree of many modules
/// that no handler's static call graph reaches at all — dead weight on
/// every cold start, fixed by deferring the subtree at its root.
fn detect_oversized_tree(
    ctx: &AnalysisContext<'_>,
    cfg: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let app = ctx.app;
    let rt = &cfg.runtime;
    let eager = ctx.eager_closure_all_handlers();
    let handler_fns: Vec<FunctionId> = app.handlers().iter().map(|h| h.function()).collect();
    let mut out = Vec::new();
    let mut claimed: Vec<String> = Vec::new();
    for node in ctx.tree.iter() {
        if claimed.iter().any(|c| covers(c, &node.path)) {
            continue;
        }
        let modules = ctx.tree.modules_under(&node.path);
        if modules.len() < cfg.oversized_modules
            || !modules.iter().all(|m| eager[m.index()])
            || !modules.iter().all(|m| app.module(*m).library().is_some())
        {
            continue;
        }
        if handler_fns
            .iter()
            .any(|f| function_uses_package(app, *f, &node.path))
        {
            continue;
        }
        if verify_deferral(app, &node.path).is_err() {
            continue;
        }
        let Some((span, edit)) = defer_edit(app, &node.path) else {
            continue;
        };
        claimed.push(node.path.clone());
        let cost = member_cost(app, &modules, rt);
        let action = FixAction::DeferPackage {
            package: node.path.clone(),
        };
        let saving = saving_of(app, &action, rt);
        out.push(finding(
            "oversized-dependency-tree",
            rt.severity_for(cost),
            span,
            format!(
                "oversized dependency tree: `{}` pulls {} modules ({:.1} ms, {}) into every \
                 cold start, yet no handler statically reaches it",
                node.path,
                modules.len(),
                cost,
                rt.name
            ),
            action,
            edit,
            saving,
        ));
    }
    out
}

/// `init-in-handler`: a deferred import whose target *every* handler's
/// static call graph reaches — the lazy load provably runs inside the
/// request on every fresh container, so the initialization belongs back
/// in init. Detection uses the per-entry FaaSLight call-graph query.
fn detect_init_in_handler(
    ctx: &AnalysisContext<'_>,
    cfg: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let app = ctx.app;
    let rt = &cfg.runtime;
    let eager = ctx.eager_closure_all_handlers();
    let n_handlers = app.handlers().len();
    let mut out = Vec::new();
    for (importer, decl) in app.all_imports() {
        if !decl.mode.is_deferred() || eager[decl.target.index()] {
            continue;
        }
        let tname = app.module(decl.target).name().to_string();
        if handlers_reaching_package(app, &tname) < n_handlers {
            continue;
        }
        let action = FixAction::RestoreEager {
            importer: app.module(importer).name().to_string(),
            target: tname.clone(),
        };
        // Restoring the edge must not close a global-import cycle.
        let mut probe = app.clone();
        if !action.apply(&mut probe) || probe.validate().is_err() {
            continue;
        }
        let lazy = eager_closure(app, decl.target, |_, d| d.mode.is_global());
        let members: Vec<ModuleId> = (0..app.modules().len())
            .filter(|i| lazy[*i] && !eager[*i])
            .map(ModuleId::from_index)
            .collect();
        let cost = member_cost(app, &members, rt) * rt.lazy_load_penalty;
        let saving = saving_of(app, &action, rt);
        out.push(finding(
            "init-in-handler",
            rt.severity_for(cost),
            Span::new(app.module(importer).file(), decl.line),
            format!(
                "init-in-handler: deferred import of `{tname}` loads inside the request on \
                 every fresh container — all {n_handlers} handler(s) statically reach it \
                 (~{cost:.1} ms at first invocation, {})",
                rt.name
            ),
            action,
            restore_edit(app, importer, decl.target, decl.line),
            saving,
        ));
    }
    out
}

/// `missing-connection-reuse`: a handler-reachable function re-creates the
/// same library client several times per invocation (consecutive identical
/// calls into a library module). The fix is advisory — hoist the client to
/// module scope — since function bodies are immutable in the model.
fn detect_missing_connection_reuse(
    ctx: &AnalysisContext<'_>,
    cfg: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let app = ctx.app;
    let rt = &cfg.runtime;
    let analysis = slimstart_faaslight::StaticAnalysis::analyze(app);
    let mut out = Vec::new();
    for (fi, func) in app.functions().iter().enumerate() {
        if !analysis.is_reachable(FunctionId::from_index(fi)) {
            continue;
        }
        let mut runs: Vec<(FunctionId, u32, usize)> = Vec::new();
        collect_call_runs(func.body(), &mut runs);
        for (target, line, count) in runs {
            if count < cfg.redundant_calls {
                continue;
            }
            let callee = app.function(target);
            let callee_module = app.module(callee.module());
            if callee_module.library().is_none() {
                continue;
            }
            let cost = (count - 1) as f64 * rt.connection_setup_ms;
            let file = app.module(func.module()).file().to_string();
            out.push(finding(
                "missing-connection-reuse",
                rt.severity_for(cost),
                Span::new(file.clone(), line),
                format!(
                    "missing connection reuse: `{}` calls `{}.{}()` {count}x per invocation \
                     (~{cost:.0} ms of repeated setup, {}); reuse one client",
                    func.name(),
                    callee_module.name(),
                    callee.name(),
                    rt.name
                ),
                FixAction::Advisory,
                CodeEdit {
                    file,
                    line,
                    before: format!(
                        "{}.{}()  # repeated {count}x from line {line}",
                        callee_module.name(),
                        callee.name()
                    ),
                    after: format!(
                        "client = {}.{}()  # once, at module scope",
                        callee_module.name(),
                        callee.name()
                    ),
                    inserted: "reuse the module-scope client inside the handler body".to_string(),
                },
                cost,
            ));
        }
    }
    out
}

/// Collects maximal runs of consecutive calls to the same target:
/// `(target, first line, length)`. Branch bodies are scanned as their own
/// statement sequences.
fn collect_call_runs(stmts: &[Stmt], out: &mut Vec<(FunctionId, u32, usize)>) {
    let mut run: Option<(FunctionId, u32, usize)> = None;
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Call(site) => match &mut run {
                Some((t, _, n)) if *t == site.target => *n += 1,
                _ => {
                    if let Some(r) = run.take() {
                        out.push(r);
                    }
                    run = Some((site.target, stmt.line, 1));
                }
            },
            StmtKind::Branch { body, .. } => {
                if let Some(r) = run.take() {
                    out.push(r);
                }
                collect_call_runs(body, out);
            }
            StmtKind::Work(_) | StmtKind::Touch(_) => {
                if let Some(r) = run.take() {
                    out.push(r);
                }
            }
        }
    }
    if let Some(r) = run.take() {
        out.push(r);
    }
}

/// `unused-heavy-library`: a whole library loaded eagerly at every cold
/// start that no handler statically uses — and, when a profile is
/// available, that no profiled invocation ever touched. ColdSpy-style
/// inefficiency, fixed by deferring the library root.
fn detect_unused_heavy_library(
    ctx: &AnalysisContext<'_>,
    cfg: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let app = ctx.app;
    let rt = &cfg.runtime;
    let eager = ctx.eager_closure_all_handlers();
    let handler_fns: Vec<FunctionId> = app.handlers().iter().map(|h| h.function()).collect();
    let mut out = Vec::new();
    for lib in app.libraries() {
        let name = lib.name();
        let members: Vec<ModuleId> = lib
            .modules()
            .iter()
            .copied()
            .filter(|m| eager[m.index()])
            .collect();
        let cost = member_cost(app, &members, rt);
        if cost < cfg.heavy_library_ms {
            continue;
        }
        if handler_fns
            .iter()
            .any(|f| function_uses_package(app, *f, name))
        {
            continue;
        }
        if let Some(usage) = ctx.usage {
            if observed_fraction(usage, name) > 0.0 {
                continue;
            }
        }
        if verify_deferral(app, name).is_err() {
            continue;
        }
        let Some((span, edit)) = defer_edit(app, name) else {
            continue;
        };
        let action = FixAction::DeferPackage {
            package: name.to_string(),
        };
        let saving = saving_of(app, &action, rt);
        out.push(finding(
            "unused-heavy-library",
            rt.severity_for(cost),
            span,
            format!(
                "unused heavy library: `{name}` costs {cost:.1} ms at every cold start ({}) \
                 but no handler ever uses it",
                rt.name
            ),
            action,
            edit,
            saving,
        ));
    }
    out
}

/// `handler-hot-import`: a deferred import whose target the profile saw in
/// a large fraction of invocations — the deferral moved a near-certain
/// load into the hot request path. Profile-driven; silent without usage.
fn detect_handler_hot_import(
    ctx: &AnalysisContext<'_>,
    cfg: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let Some(usage) = ctx.usage else {
        return Vec::new();
    };
    let app = ctx.app;
    let rt = &cfg.runtime;
    let eager = ctx.eager_closure_all_handlers();
    let mut out = Vec::new();
    for (importer, decl) in app.all_imports() {
        if !decl.mode.is_deferred() || eager[decl.target.index()] {
            continue;
        }
        let tname = app.module(decl.target).name().to_string();
        let frac = observed_fraction(usage, &tname);
        if frac < cfg.hot_fraction {
            continue;
        }
        let action = FixAction::RestoreEager {
            importer: app.module(importer).name().to_string(),
            target: tname.clone(),
        };
        let mut probe = app.clone();
        if !action.apply(&mut probe) || probe.validate().is_err() {
            continue;
        }
        let lazy = eager_closure(app, decl.target, |_, d| d.mode.is_global());
        let members: Vec<ModuleId> = (0..app.modules().len())
            .filter(|i| lazy[*i] && !eager[*i])
            .map(ModuleId::from_index)
            .collect();
        let cost = member_cost(app, &members, rt) * rt.lazy_load_penalty * frac;
        let saving = saving_of(app, &action, rt);
        out.push(finding(
            "handler-hot-import",
            rt.severity_for(cost),
            Span::new(app.module(importer).file(), decl.line),
            format!(
                "handler-hot import: deferred `{tname}` was used in {:.0}% of profiled \
                 invocations — its lazy load lands in the hot request path (~{cost:.1} ms \
                 amortized, {})",
                frac * 100.0,
                rt.name
            ),
            action,
            restore_edit(app, importer, decl.target, decl.line),
            saving,
        ));
    }
    out
}

/// Runs all six anti-pattern detectors over `app` and returns the findings
/// in deterministic order.
pub fn collect_findings(
    app: &Application,
    usage: Option<&ObservedUsage>,
    config: &AntipatternConfig,
) -> Vec<AntipatternFinding> {
    let ctx = AnalysisContext::new(app, usage);
    let mut out = Vec::new();
    out.extend(detect_eager_monolithic(&ctx, config));
    out.extend(detect_oversized_tree(&ctx, config));
    out.extend(detect_init_in_handler(&ctx, config));
    out.extend(detect_missing_connection_reuse(&ctx, config));
    out.extend(detect_unused_heavy_library(&ctx, config));
    out.extend(detect_handler_hot_import(&ctx, config));
    out
}

// ---------------------------------------------------------------- passes

macro_rules! antipattern_pass {
    ($name:ident, $id:literal, $desc:literal, $detect:ident) => {
        /// Anti-pattern pass; see the module docs and [`lint_catalog`].
        pub struct $name {
            /// Pass thresholds and the runtime cost profile.
            pub config: AntipatternConfig,
        }

        impl AnalysisPass for $name {
            fn id(&self) -> &'static str {
                $id
            }

            fn description(&self) -> &'static str {
                $desc
            }

            fn run(&self, ctx: &AnalysisContext<'_>, out: &mut Vec<Diagnostic>) {
                out.extend($detect(ctx, &self.config).into_iter().map(|f| f.diagnostic));
            }
        }
    };
}

antipattern_pass!(
    EagerMonolithicInitPass,
    "eager-monolithic-init",
    "flag heavy eager packages that some handlers never need",
    detect_eager_monolithic
);
antipattern_pass!(
    OversizedDependencyTreePass,
    "oversized-dependency-tree",
    "flag large eager module subtrees no handler reaches",
    detect_oversized_tree
);
antipattern_pass!(
    InitInHandlerPass,
    "init-in-handler",
    "flag deferred imports every handler pays for inside the request",
    detect_init_in_handler
);
antipattern_pass!(
    MissingConnectionReusePass,
    "missing-connection-reuse",
    "flag repeated per-invocation client/connection setup",
    detect_missing_connection_reuse
);
antipattern_pass!(
    UnusedHeavyLibraryPass,
    "unused-heavy-library",
    "flag expensive eagerly-loaded libraries no handler uses",
    detect_unused_heavy_library
);
antipattern_pass!(
    HandlerHotImportPass,
    "handler-hot-import",
    "flag deferred imports the profile shows on the hot path",
    detect_handler_hot_import
);

impl Analyzer {
    /// The default five passes plus the six anti-pattern passes — the
    /// full lint catalog `slimstart lint` runs.
    pub fn with_antipattern_passes(config: AntipatternConfig) -> Analyzer {
        let mut a = Analyzer::with_default_passes();
        a.register(Box::new(EagerMonolithicInitPass {
            config: config.clone(),
        }));
        a.register(Box::new(OversizedDependencyTreePass {
            config: config.clone(),
        }));
        a.register(Box::new(InitInHandlerPass {
            config: config.clone(),
        }));
        a.register(Box::new(MissingConnectionReusePass {
            config: config.clone(),
        }));
        a.register(Box::new(UnusedHeavyLibraryPass {
            config: config.clone(),
        }));
        a.register(Box::new(HandlerHotImportPass { config }));
        a
    }
}

// --------------------------------------------------------------- catalog

/// One entry of the lint catalog: what a lint means, how it is detected
/// and what the suggested refactoring is (`slimstart lint --explain`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintInfo {
    /// Stable lint id.
    pub id: &'static str,
    /// The pass that emits it.
    pub pass: &'static str,
    /// Default severity label (per-runtime promotion may raise it).
    pub default_severity: &'static str,
    /// Why the pattern hurts cold starts.
    pub rationale: &'static str,
    /// How the analyzer detects it.
    pub detection: &'static str,
    /// The suggested refactoring.
    pub refactoring: &'static str,
}

/// The full lint catalog: every lint id any registered pass can emit.
pub fn lint_catalog() -> &'static [LintInfo] {
    &[
        LintInfo {
            id: "deferral-side-effects",
            pass: "deferral-safety",
            default_severity: "error",
            rationale: "a deferred subtree containing import-time side effects postpones \
                        observable behaviour past cold start",
            detection: "deferral-safety verifier: side-effectful module inside the deferred \
                        subtree",
            refactoring: "restore the eager import, or isolate the side effects into a module \
                          that stays eager",
        },
        LintInfo {
            id: "deferral-parent-side-effects",
            pass: "deferral-safety",
            default_severity: "error",
            rationale: "deferring a subtree can also postpone a side-effectful ancestor package \
                        that nothing else loads eagerly",
            detection: "deferral-safety verifier: parent-aware load-set diff before/after the \
                        deferral",
            refactoring: "keep an eager import of the side-effectful ancestor",
        },
        LintInfo {
            id: "deferral-touch-before-call",
            pass: "deferral-safety",
            default_severity: "error",
            rationale: "an attribute touch before the first call site would read an unbound name \
                        once the import moves there",
            detection: "deferral-safety verifier: statement-order scan of every function outside \
                        the subtree",
            refactoring: "move the touch after the first call, or restore the eager import",
        },
        LintInfo {
            id: "deferral-cycle",
            pass: "deferral-safety",
            default_severity: "error",
            rationale: "deferred-import cycles re-enter the lazy loader at runtime",
            detection: "deferral-safety verifier: path search over deferred edges with the \
                        boundary flipped",
            refactoring: "break the cycle by keeping one edge eager",
        },
        LintInfo {
            id: "dead-import",
            pass: "dead-imports",
            default_severity: "warning",
            rationale: "a global import no function of the importer reaches still costs init \
                        time and memory at every cold start",
            detection: "transitive call-graph reachability from the importer's functions",
            refactoring: "delete the import",
        },
        LintInfo {
            id: "redundant-import",
            pass: "duplicate-imports",
            default_severity: "info",
            rationale: "an import whose target another import already loads adds noise and \
                        hides the real dependency",
            detection: "eager-closure containment between sibling import declarations",
            refactoring: "delete the redundant declaration",
        },
        LintInfo {
            id: "shadowed-deferral",
            pass: "duplicate-imports",
            default_severity: "warning",
            rationale: "a deferred import whose target still loads eagerly through another path \
                        buys nothing and misleads readers",
            detection: "deferred targets present in the all-handlers eager closure",
            refactoring: "defer the other eager path too, or restore this import to eager",
        },
        LintInfo {
            id: "import-cycle",
            pass: "import-cycles",
            default_severity: "warning",
            rationale: "cycles through deferred edges are re-entrant lazy loads and a \
                        maintenance hazard",
            detection: "DFS over the full import graph with canonical cycle reporting",
            refactoring: "restructure so one direction of the cycle disappears",
        },
        LintInfo {
            id: "over-approximation",
            pass: "over-approximation",
            default_severity: "info",
            rationale: "subtrees static analysis keeps but the profile never observed are pure \
                        over-approximation cost (the paper's Fig. 2 gap)",
            detection: "diff of FaaSLight reachability against profile-observed usage",
            refactoring: "let the profile-guided optimizer defer them",
        },
        LintInfo {
            id: "eager-monolithic-init",
            pass: "eager-monolithic-init",
            default_severity: "info/warning (runtime-ranked)",
            rationale: "one heavy package dominating eager init that some handlers never need \
                        makes every cold start pay the worst case",
            detection: "eager package cost share above threshold, at least one handler without \
                        a static use, deferral proven safe",
            refactoring: "defer the package's boundary imports (applied by `lint --fix`)",
        },
        LintInfo {
            id: "oversized-dependency-tree",
            pass: "oversized-dependency-tree",
            default_severity: "info/warning (runtime-ranked)",
            rationale: "hundreds of eagerly-imported modules nobody calls inflate init and \
                        memory on every cold start",
            detection: "eager subtree of >= N modules unreachable from every handler, deferral \
                        proven safe",
            refactoring: "defer the subtree at its root (applied by `lint --fix`)",
        },
        LintInfo {
            id: "init-in-handler",
            pass: "init-in-handler",
            default_severity: "info/warning (runtime-ranked)",
            rationale: "initialization every handler needs that runs inside the request path \
                        adds its cost to first-request latency on every fresh container",
            detection: "per-entry FaaSLight call-graph query: every handler statically reaches \
                        the deferred target",
            refactoring: "restore the eager import so the load happens during init (applied by \
                          `lint --fix`)",
        },
        LintInfo {
            id: "missing-connection-reuse",
            pass: "missing-connection-reuse",
            default_severity: "info/warning (runtime-ranked)",
            rationale: "re-creating a client or connection on every call repeats setup work \
                        that one module-scope client amortizes across the container lifetime",
            detection: "runs of >= N consecutive identical library calls in handler-reachable \
                        functions",
            refactoring: "hoist the client to module scope and reuse it (advisory)",
        },
        LintInfo {
            id: "unused-heavy-library",
            pass: "unused-heavy-library",
            default_severity: "info/warning (runtime-ranked)",
            rationale: "an expensive library no handler uses is pure cold-start waste",
            detection: "eager library cost above threshold, no static handler use, no observed \
                        profile use, deferral proven safe",
            refactoring: "defer the library root (applied by `lint --fix`); consider removing \
                          the dependency",
        },
        LintInfo {
            id: "handler-hot-import",
            pass: "handler-hot-import",
            default_severity: "info/warning (runtime-ranked)",
            rationale: "deferring an import the workload uses on most invocations just moves \
                        its cost into the hot request path",
            detection: "profile-observed use fraction of a deferred target above threshold",
            refactoring: "restore the eager import (applied by `lint --fix`)",
        },
    ]
}

/// Looks up a catalog entry by lint id.
pub fn lint_info(id: &str) -> Option<&'static LintInfo> {
    lint_catalog().iter().find(|l| l.id == id)
}

// --------------------------------------------------------------- autofix

/// A fix [`auto_fix`] applied.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedFix {
    /// The lint that proposed it.
    pub lint_id: &'static str,
    /// Human description of the action.
    pub subject: String,
    /// The projected source edit.
    pub edit: CodeEdit,
    /// Modeled mean cold-start saving, ms (non-negative by construction).
    pub estimated_saving_ms: f64,
}

/// A fix [`auto_fix`] refused, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedFix {
    /// The lint that proposed it.
    pub lint_id: &'static str,
    /// Human description of the action.
    pub subject: String,
    /// Why it was refused.
    pub reason: String,
}

/// What [`auto_fix`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoFixReport {
    /// Fixes applied, in application order.
    pub applied: Vec<AppliedFix>,
    /// Fixes refused by one of the gates.
    pub rejected: Vec<RejectedFix>,
    /// Collect/apply rounds executed.
    pub rounds: usize,
    /// Modeled mean cold start before any fix, ms.
    pub estimated_before_ms: f64,
    /// Modeled mean cold start after the applied fixes, ms.
    pub estimated_after_ms: f64,
    /// Whether the loop reached a fixpoint (a round that applied nothing)
    /// within the round budget.
    pub converged: bool,
}

impl AutoFixReport {
    /// Total modeled saving across applied fixes, ms.
    pub fn estimated_saving_ms(&self) -> f64 {
        self.estimated_before_ms - self.estimated_after_ms
    }
}

/// The result of [`auto_fix`]: the rewritten application and the journal.
#[derive(Debug, Clone)]
pub struct AutoFixResult {
    /// The application with all accepted fixes applied.
    pub app: Application,
    /// What was applied, what was refused, and the modeled deltas.
    pub report: AutoFixReport,
}

/// Applies the anti-pattern fixes that survive four gates, looping until a
/// fixpoint or `max_rounds`:
///
/// 1. **Safety** — `DeferPackage` actions must pass the deferral-safety
///    verifier against the *current* application; `RestoreEager` actions
///    must leave the model's invariants intact (no global-import cycle).
/// 2. **No new errors** — the default five-pass analyzer must report no
///    more error-severity diagnostics on the fixed app than before.
/// 3. **Convergence** — re-collecting findings on the fixed app must show
///    the fixed lint instance gone.
/// 4. **No modeled regression** — the runtime-profile cold-start estimate
///    must not increase.
///
/// Rejected actions are remembered across rounds so the loop cannot retry
/// them forever. Advisory fixes are reported but never applied.
pub fn auto_fix(
    app: &Application,
    usage: Option<&ObservedUsage>,
    config: &AntipatternConfig,
    max_rounds: usize,
) -> AutoFixResult {
    let rt = &config.runtime;
    let mut current = app.clone();
    let estimated_before_ms = estimated_cold_start_ms(&current, rt);
    let mut applied: Vec<AppliedFix> = Vec::new();
    let mut rejected: Vec<RejectedFix> = Vec::new();
    let mut applied_keys: BTreeSet<String> = BTreeSet::new();
    let mut rejected_keys: BTreeSet<String> = BTreeSet::new();
    let mut rounds = 0;
    let mut converged = false;

    while rounds < max_rounds {
        rounds += 1;
        let findings = collect_findings(&current, usage, config);
        let base_errors = Analyzer::with_default_passes()
            .analyze(&current, usage)
            .error_count();
        let mut seen_this_round: BTreeSet<String> = BTreeSet::new();
        let mut progressed = false;

        for f in findings {
            if !f.fix.action.is_applicable() {
                continue;
            }
            let key = f.fix.action.key();
            if applied_keys.contains(&key)
                || rejected_keys.contains(&key)
                || !seen_this_round.insert(key.clone())
            {
                continue;
            }
            let reject = |reason: String, rejected: &mut Vec<RejectedFix>| {
                rejected.push(RejectedFix {
                    lint_id: f.fix.lint_id,
                    subject: f.fix.action.describe(),
                    reason,
                });
            };
            // Gate 1: the safety verifier, against the live application.
            if let FixAction::DeferPackage { package } = &f.fix.action {
                if let Err(v) = verify_deferral(&current, package) {
                    reject(format!("safety verifier refused: {v}"), &mut rejected);
                    rejected_keys.insert(key);
                    continue;
                }
            }
            let mut candidate = current.clone();
            if !f.fix.action.apply(&mut candidate) {
                continue; // stale no-op; re-collected next round
            }
            if let Err(e) = candidate.validate() {
                reject(format!("model invariant violated: {e}"), &mut rejected);
                rejected_keys.insert(key);
                continue;
            }
            // Gate 2: re-analysis must not introduce new errors.
            let cand_errors = Analyzer::with_default_passes()
                .analyze(&candidate, usage)
                .error_count();
            if cand_errors > base_errors {
                reject(
                    format!("re-analysis reports {cand_errors} error(s), up from {base_errors}"),
                    &mut rejected,
                );
                rejected_keys.insert(key);
                continue;
            }
            // Gate 3: the fixed lint instance must be gone.
            let still_fires = collect_findings(&candidate, usage, config)
                .iter()
                .any(|g| g.fix.lint_id == f.fix.lint_id && g.fix.action.key() == key);
            if still_fires {
                reject(
                    "fix did not eliminate the lint instance".to_string(),
                    &mut rejected,
                );
                rejected_keys.insert(key);
                continue;
            }
            // Gate 4: the modeled cold start must not regress.
            let saving =
                estimated_cold_start_ms(&current, rt) - estimated_cold_start_ms(&candidate, rt);
            if saving < -1e-9 {
                reject(
                    format!("regresses modeled cold start by {:.1} ms", -saving),
                    &mut rejected,
                );
                rejected_keys.insert(key);
                continue;
            }
            current = candidate;
            applied.push(AppliedFix {
                lint_id: f.fix.lint_id,
                subject: f.fix.action.describe(),
                edit: f.fix.edit,
                estimated_saving_ms: saving.max(0.0),
            });
            applied_keys.insert(key);
            progressed = true;
        }

        if !progressed {
            converged = true;
            break;
        }
    }

    let estimated_after_ms = estimated_cold_start_ms(&current, rt);
    AutoFixResult {
        app: current,
        report: AutoFixReport {
            applied,
            rejected,
            rounds,
            estimated_before_ms,
            estimated_after_ms,
            converged,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_simcore::time::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler + lib{root, hot, heavy×2}: the handler uses only lib.hot;
    /// lib.heavy (100 ms across two modules) rides along eagerly.
    fn monolithic_app() -> Application {
        let mut b = AppBuilder::new("mono");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(2), 0, false, lib);
        let hot = b.add_library_module("lib.hot", ms(400), 0, false, lib);
        let heavy = b.add_library_module("lib.heavy", ms(60), 0, false, lib);
        let heavy2 = b.add_library_module("lib.heavy.sub", ms(40), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 1, ImportMode::Global).unwrap();
        b.add_import(root, heavy, 2, ImportMode::Global).unwrap();
        b.add_import(heavy, heavy2, 1, ImportMode::Global).unwrap();
        let api = b.add_function("hot.api", hot, 3, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(api),
            }],
        );
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    #[test]
    fn monolithic_init_is_flagged_with_defer_fix() {
        let app = monolithic_app();
        let cfg = AntipatternConfig::default();
        let findings = collect_findings(&app, None, &cfg);
        let mono: Vec<_> = findings
            .iter()
            .filter(|f| f.fix.lint_id == "eager-monolithic-init")
            .collect();
        assert!(
            mono.iter().any(|f| matches!(
                &f.fix.action,
                FixAction::DeferPackage { package } if package == "lib.heavy"
            )),
            "{mono:?}"
        );
        // The handler-used subtree is never proposed for deferral.
        assert!(!findings.iter().any(|f| matches!(
            &f.fix.action,
            FixAction::DeferPackage { package } if package == "lib.hot" || package == "lib"
        )));
        let f = mono
            .iter()
            .find(|f| matches!(&f.fix.action, FixAction::DeferPackage { package } if package == "lib.heavy"))
            .unwrap();
        assert!(
            f.fix.estimated_saving_ms > 90.0,
            "{}",
            f.fix.estimated_saving_ms
        );
        assert!(f.diagnostic.suggestion.is_some());
    }

    #[test]
    fn below_threshold_app_is_clean() {
        // Same shape, tiny init: total gate not met.
        let mut b = AppBuilder::new("small");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        let heavy = b.add_library_module("lib.heavy", ms(5), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, heavy, 1, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        assert!(collect_findings(&app, None, &AntipatternConfig::default()).is_empty());
    }

    #[test]
    fn same_lint_ranks_differently_per_runtime() {
        // lib.heavy is ~101 ms on python (warning, >= 100) but ~184 ms on
        // the JVM whose warn floor is 250 (info).
        let app = monolithic_app();
        let py = collect_findings(
            &app,
            None,
            &AntipatternConfig::default().with_runtime(RuntimeProfile::python()),
        );
        let jv = collect_findings(
            &app,
            None,
            &AntipatternConfig::default().with_runtime(RuntimeProfile::java()),
        );
        let sev = |fs: &[AntipatternFinding]| {
            fs.iter()
                .find(|f| {
                    f.fix.lint_id == "eager-monolithic-init"
                        && matches!(&f.fix.action, FixAction::DeferPackage { package } if package == "lib.heavy")
                })
                .map(|f| f.diagnostic.severity)
        };
        assert_eq!(sev(&py), Some(Severity::Warning));
        assert_eq!(sev(&jv), Some(Severity::Info));
    }

    #[test]
    fn estimator_charges_lazy_loads_with_penalty() {
        let mut app = monolithic_app();
        let rt = RuntimeProfile::python();
        let eager_cost = estimated_cold_start_ms(&app, &rt);
        // Defer the handler-used subtree: its cost moves into the request
        // with the lazy penalty, so the modeled cold start goes *up*.
        let root = app.module_by_name("lib").unwrap();
        let hot = app.module_by_name("lib.hot").unwrap();
        app.set_import_mode(root, hot, ImportMode::Deferred);
        let lazy_cost = estimated_cold_start_ms(&app, &rt);
        assert!(lazy_cost > eager_cost, "{lazy_cost} vs {eager_cost}");
    }

    #[test]
    fn auto_fix_defers_the_heavy_package_and_converges() {
        let app = monolithic_app();
        let cfg = AntipatternConfig::default();
        let result = auto_fix(&app, None, &cfg, 4);
        assert!(result.report.converged);
        assert!(result
            .report
            .applied
            .iter()
            .any(|a| a.subject.contains("lib.heavy")));
        assert!(result.report.estimated_after_ms < result.report.estimated_before_ms);
        assert!(result
            .report
            .applied
            .iter()
            .all(|a| a.estimated_saving_ms >= 0.0));
        // Convergence: the fixed lints are gone from the fixed app.
        let after = collect_findings(&result.app, None, &cfg);
        for a in &result.report.applied {
            assert!(
                !after.iter().any(|f| f.fix.lint_id == a.lint_id),
                "{} still fires",
                a.lint_id
            );
        }
        // The original is untouched.
        let root = app.module_by_name("lib").unwrap();
        assert!(app.imports_of(root).iter().all(|d| d.mode.is_global()));
    }

    #[test]
    fn auto_fix_never_defers_side_effectful_packages() {
        let mut b = AppBuilder::new("sfx");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(2), 0, false, lib);
        let hot = b.add_library_module("lib.hot", ms(400), 0, false, lib);
        let plug = b.add_library_module("lib.plugins", ms(100), 0, true, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 1, ImportMode::Global).unwrap();
        b.add_import(root, plug, 2, ImportMode::Global).unwrap();
        let api = b.add_function("hot.api", hot, 3, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(api),
            }],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let result = auto_fix(&app, None, &AntipatternConfig::default(), 4);
        // The detectors pre-check the verifier, so the side-effectful
        // package is never even proposed — and certainly never applied.
        assert!(
            result.report.applied.is_empty(),
            "{:?}",
            result.report.applied
        );
        let root = result.app.module_by_name("lib").unwrap();
        assert!(result
            .app
            .imports_of(root)
            .iter()
            .all(|d| d.mode.is_global()));
    }

    #[test]
    fn findings_are_deterministic() {
        let app = monolithic_app();
        let cfg = AntipatternConfig::default();
        let a = collect_findings(&app, None, &cfg);
        let b = collect_findings(&app, None, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn lint_catalog_covers_every_id_once() {
        let catalog = lint_catalog();
        assert_eq!(catalog.len(), 15);
        let mut ids: Vec<&str> = catalog.iter().map(|l| l.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15, "duplicate lint ids in the catalog");
        for id in [
            "eager-monolithic-init",
            "oversized-dependency-tree",
            "init-in-handler",
            "missing-connection-reuse",
            "unused-heavy-library",
            "handler-hot-import",
        ] {
            assert!(lint_info(id).is_some(), "{id} missing from catalog");
        }
        assert!(lint_info("nope").is_none());
    }

    #[test]
    fn all_passes_analyzer_registers_eleven_passes() {
        let a = Analyzer::with_antipattern_passes(AntipatternConfig::default());
        assert_eq!(a.passes().len(), 11);
        let ids: Vec<&str> = a.passes().iter().map(|p| p.id()).collect();
        assert!(ids.contains(&"deferral-safety"));
        assert!(ids.contains(&"eager-monolithic-init"));
        assert!(ids.contains(&"handler-hot-import"));
        // Every pass id in the catalog resolves.
        for pass in ids {
            assert!(
                lint_catalog().iter().any(|l| l.pass == pass)
                    || pass == "dead-imports"
                    || pass == "duplicate-imports"
                    || pass == "import-cycles"
                    || pass == "over-approximation"
                    || pass == "deferral-safety",
            );
        }
    }

    #[test]
    fn fix_action_keys_and_apply_round_trip() {
        let defer = FixAction::DeferPackage {
            package: "lib.heavy".into(),
        };
        let eager = FixAction::RestoreEager {
            importer: "handler".into(),
            target: "lib".into(),
        };
        assert_eq!(defer.key(), "defer:lib.heavy");
        assert_eq!(eager.key(), "eager:handler->lib");
        assert!(!FixAction::Advisory.is_applicable());
        let mut app = monolithic_app();
        assert!(defer.apply(&mut app));
        // Re-applying is a no-op: the boundary is already deferred... but
        // boundary_imports only lists *global* edges, so apply reports false.
        assert!(!defer.apply(&mut app));
        // Restore it.
        let restore = FixAction::RestoreEager {
            importer: "lib".into(),
            target: "lib.heavy".into(),
        };
        assert!(restore.apply(&mut app));
        assert!(!restore.apply(&mut app), "already eager");
    }
}
