//! The deferral-safety verifier.
//!
//! [`verify_deferral`] proves that deferring every global boundary import
//! into a candidate package preserves observable behaviour, or returns the
//! concrete [`SafetyViolation`] that makes it unsound. It replaces the
//! optimizer's single pre-marked side-effect flag with four checked
//! violation classes:
//!
//! 1. **Side-effectful module in the subtree** — the deferred subtree
//!    contains a module whose top level has effects; postponing them
//!    changes behaviour.
//! 2. **Parent-package side effects** — the runtime loads ancestor
//!    packages implicitly (`load_with_parents`), so deferring a subtree
//!    can also postpone a side-effectful *ancestor* that nothing else
//!    loads eagerly. Import-edge reachability misses this entirely.
//! 3. **Import-time touch before first call** — the rewrite inserts the
//!    import at the first call site; an attribute `Touch` executing before
//!    that call would reference an unbound name in real Python.
//! 4. **Deferred-import cycle** — flipping boundary imports to deferred
//!    must not close a cycle among deferred edges (re-entrant lazy loads).
//!
//! [`verify_deferred_import`] applies the same reasoning to imports that
//! are *already* deferred in the application as written, which is how the
//! analyzer audits a deployed (post-optimizer or hand-tuned) app.

use std::fmt;

use slimstart_appmodel::function::StmtKind;
use slimstart_appmodel::{Application, ImportMode, ModuleId};

use crate::context::{eager_closure, eager_closure_all_handlers};

/// Why a deferral is (or would be) unsafe.
#[derive(Debug, Clone, PartialEq)]
pub enum SafetyViolation {
    /// A module inside the deferred subtree runs side effects at import
    /// time; deferring would postpone them past cold start.
    SideEffectfulModule {
        /// The candidate package.
        package: String,
        /// The offending module.
        module: String,
        /// Its modeled source file.
        file: String,
    },
    /// An *ancestor* package outside the subtree is side-effectful and is
    /// only loaded eagerly because of the boundary imports being deferred.
    ParentSideEffects {
        /// The candidate package.
        package: String,
        /// The side-effectful module that would fall out of the cold-start
        /// load set.
        parent: String,
        /// Its modeled source file.
        file: String,
    },
    /// A function outside the subtree touches an attribute of a deferred
    /// module before (or without) the first call that would trigger the
    /// inserted import.
    ImportTimeTouch {
        /// The candidate package.
        package: String,
        /// The function containing the early touch.
        function: String,
        /// The touched module.
        module: String,
        /// File of the touching function.
        file: String,
        /// Line of the touch statement.
        line: u32,
    },
    /// Deferring the boundary imports would close a cycle among deferred
    /// import edges.
    DeferredCycle {
        /// The candidate package.
        package: String,
        /// The cycle as module names, first repeated last.
        cycle: Vec<String>,
        /// File of the import declaration that closes the cycle.
        file: String,
        /// Line of that declaration.
        line: u32,
    },
}

impl SafetyViolation {
    /// The stable lint id diagnostics for this violation carry.
    pub fn lint_id(&self) -> &'static str {
        match self {
            SafetyViolation::SideEffectfulModule { .. } => "deferral-side-effects",
            SafetyViolation::ParentSideEffects { .. } => "deferral-parent-side-effects",
            SafetyViolation::ImportTimeTouch { .. } => "deferral-touch-before-call",
            SafetyViolation::DeferredCycle { .. } => "deferral-cycle",
        }
    }

    /// `(file, line)` the violation anchors to.
    pub fn span(&self) -> (&str, u32) {
        match self {
            SafetyViolation::SideEffectfulModule { file, .. }
            | SafetyViolation::ParentSideEffects { file, .. } => (file, 1),
            SafetyViolation::ImportTimeTouch { file, line, .. }
            | SafetyViolation::DeferredCycle { file, line, .. } => (file, *line),
        }
    }
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::SideEffectfulModule {
                package, module, ..
            } => write!(
                f,
                "deferring `{package}` would postpone import-time side effects of `{module}`"
            ),
            SafetyViolation::ParentSideEffects {
                package, parent, ..
            } => write!(
                f,
                "deferring `{package}` would postpone side effects of ancestor package \
                 `{parent}`, which only loads eagerly through this boundary"
            ),
            SafetyViolation::ImportTimeTouch {
                package,
                function,
                module,
                ..
            } => write!(
                f,
                "function `{function}` touches `{module}` before the first call that would \
                 import deferred `{package}`"
            ),
            SafetyViolation::DeferredCycle { package, cycle, .. } => write!(
                f,
                "deferring `{package}` closes a deferred-import cycle: {}",
                cycle.join(" -> ")
            ),
        }
    }
}

/// Global import declarations crossing from outside `package` into it:
/// `(importer, target, line)` triples. These are exactly the edges the
/// optimizer would flip to [`ImportMode::Deferred`].
pub fn boundary_imports(app: &Application, package: &str) -> Vec<(ModuleId, ModuleId, u32)> {
    let mut out = Vec::new();
    for (importer, decl) in app.all_imports() {
        if decl.mode.is_global()
            && !app.module(importer).in_package(package)
            && app.module(decl.target).in_package(package)
        {
            out.push((importer, decl.target, decl.line));
        }
    }
    out
}

/// Proves the deferral of every global boundary import into `package` safe,
/// or returns the first violation found (checked in the order side effects,
/// parent side effects, touch-before-call, deferred cycle).
///
/// A package with no global boundary imports verifies trivially: deferring
/// nothing changes nothing.
///
/// # Errors
///
/// Returns the [`SafetyViolation`] that makes the deferral unsound.
pub fn verify_deferral(app: &Application, package: &str) -> Result<(), SafetyViolation> {
    let boundary = boundary_imports(app, package);
    if boundary.is_empty() {
        return Ok(());
    }

    // 1. Side-effectful module anywhere in the deferred subtree.
    for module in app.modules() {
        if module.in_package(package) && module.side_effectful() {
            return Err(SafetyViolation::SideEffectfulModule {
                package: package.to_string(),
                module: module.name().to_string(),
                file: module.file().to_string(),
            });
        }
    }

    // 2. Parent-package side effects: diff the parent-aware cold-start load
    //    set before and after flipping the boundary edges. Any
    //    side-effectful module that leaves the set — outside the subtree,
    //    which step 1 already cleared — only loaded through this boundary.
    let is_boundary = |importer: ModuleId, target: ModuleId| {
        !app.module(importer).in_package(package) && app.module(target).in_package(package)
    };
    let before = eager_closure_all_handlers(app, |_, d| d.mode.is_global());
    let after =
        eager_closure_all_handlers(app, |m, d| d.mode.is_global() && !is_boundary(m, d.target));
    for (idx, module) in app.modules().iter().enumerate() {
        if before[idx] && !after[idx] && !module.in_package(package) && module.side_effectful() {
            return Err(SafetyViolation::ParentSideEffects {
                package: package.to_string(),
                parent: module.name().to_string(),
                file: module.file().to_string(),
            });
        }
    }

    // 3. Import-time touch before the first in-package call. The rewrite
    //    puts `import pkg...` at the first call site, so a touch that runs
    //    earlier (or runs with no call at all) reads an unbound name.
    for function in app.functions() {
        if app.module(function.module()).in_package(package) {
            continue;
        }
        if let Some((touched, line)) = touch_before_call(app, function.body(), package) {
            return Err(SafetyViolation::ImportTimeTouch {
                package: package.to_string(),
                function: function.name().to_string(),
                module: app.module(touched).name().to_string(),
                file: app.module(function.module()).file().to_string(),
                line,
            });
        }
    }

    // 4. Deferred-import cycle: with the boundary flipped, is there a path
    //    from any boundary target back to its importer over deferred edges?
    let deferred_edge = |importer: ModuleId, decl: &slimstart_appmodel::ImportDecl| {
        decl.mode == ImportMode::Deferred || is_boundary(importer, decl.target)
    };
    for &(importer, target, line) in &boundary {
        if let Some(path) = deferred_path(app, target, importer, &deferred_edge) {
            let mut cycle = vec![app.module(importer).name().to_string()];
            cycle.extend(path.iter().map(|m| app.module(*m).name().to_string()));
            return Err(SafetyViolation::DeferredCycle {
                package: package.to_string(),
                cycle,
                file: app.module(importer).file().to_string(),
                line,
            });
        }
    }

    Ok(())
}

/// Audits an import that is *already* deferred in the application as
/// written: its lazy-load closure must not contain a side-effectful module
/// that no handler loads eagerly, and no function of the importer may touch
/// the target's subtree before its first call into it.
///
/// # Errors
///
/// Returns the violation the deployed deferral commits.
pub fn verify_deferred_import(
    app: &Application,
    importer: ModuleId,
    target: ModuleId,
) -> Result<(), SafetyViolation> {
    let target_name = app.module(target).name().to_string();

    // What the deferred import would load when it fires (parents included),
    // minus what every handler already loads at cold start.
    let lazy = eager_closure(app, target, |_, d| d.mode.is_global());
    let eager = eager_closure_all_handlers(app, |_, d| d.mode.is_global());
    for (idx, module) in app.modules().iter().enumerate() {
        if lazy[idx] && !eager[idx] && module.side_effectful() {
            return Err(if module.in_package(&target_name) {
                SafetyViolation::SideEffectfulModule {
                    package: target_name.clone(),
                    module: module.name().to_string(),
                    file: module.file().to_string(),
                }
            } else {
                SafetyViolation::ParentSideEffects {
                    package: target_name.clone(),
                    parent: module.name().to_string(),
                    file: module.file().to_string(),
                }
            });
        }
    }

    // Touch-before-call inside the importer module's own functions.
    for function in app.functions() {
        if function.module() != importer {
            continue;
        }
        if let Some((touched, line)) = touch_before_call(app, function.body(), &target_name) {
            return Err(SafetyViolation::ImportTimeTouch {
                package: target_name.clone(),
                function: function.name().to_string(),
                module: app.module(touched).name().to_string(),
                file: app.module(importer).file().to_string(),
                line,
            });
        }
    }

    Ok(())
}

/// Walks `body` in statement order (branch bodies inline, since a branch may
/// statically execute) and reports the first `Touch` of an in-`package`
/// module that is not preceded by a call into the package.
fn touch_before_call(
    app: &Application,
    body: &[slimstart_appmodel::function::Stmt],
    package: &str,
) -> Option<(ModuleId, u32)> {
    fn walk(
        app: &Application,
        stmts: &[slimstart_appmodel::function::Stmt],
        package: &str,
        called: &mut bool,
    ) -> Option<(ModuleId, u32)> {
        for stmt in stmts {
            match &stmt.kind {
                StmtKind::Touch(m) if app.module(*m).in_package(package) && !*called => {
                    return Some((*m, stmt.line));
                }
                StmtKind::Call(site) => {
                    let callee = app.function(site.target);
                    if app.module(callee.module()).in_package(package) {
                        *called = true;
                    }
                }
                StmtKind::Branch { body, .. } => {
                    // A branch's touch may execute while its own calls may
                    // not have; treat calls inside the branch as satisfying
                    // only statements after them inside that branch.
                    let mut inner = *called;
                    if let Some(hit) = walk(app, body, package, &mut inner) {
                        return Some(hit);
                    }
                }
                StmtKind::Touch(_) | StmtKind::Work(_) => {}
            }
        }
        None
    }
    let mut called = false;
    walk(app, body, package, &mut called)
}

/// DFS for a path `from -> ... -> to` over edges accepted by `is_edge`;
/// returns the node sequence starting at `from` and ending at `to`.
fn deferred_path<F>(
    app: &Application,
    from: ModuleId,
    to: ModuleId,
    is_edge: &F,
) -> Option<Vec<ModuleId>>
where
    F: Fn(ModuleId, &slimstart_appmodel::ImportDecl) -> bool,
{
    let mut visited = vec![false; app.modules().len()];
    let mut path = Vec::new();
    fn dfs<F>(
        app: &Application,
        node: ModuleId,
        to: ModuleId,
        is_edge: &F,
        visited: &mut [bool],
        path: &mut Vec<ModuleId>,
    ) -> bool
    where
        F: Fn(ModuleId, &slimstart_appmodel::ImportDecl) -> bool,
    {
        visited[node.index()] = true;
        path.push(node);
        if node == to {
            return true;
        }
        for decl in app.imports_of(node) {
            if is_edge(node, decl)
                && !visited[decl.target.index()]
                && dfs(app, decl.target, to, is_edge, visited, path)
            {
                return true;
            }
        }
        path.pop();
        false
    }
    if dfs(app, from, to, is_edge, &mut visited, &mut path) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{CallKind, CallSite, Stmt, StmtKind};
    use slimstart_simcore::time::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler -> lib (global), lib -> lib.sub (global); `sfx` controls
    /// whether lib.sub.noisy is side-effectful.
    fn two_level_app(sfx: bool) -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(5), 0, false, lib);
        let sub = b.add_library_module("lib.sub", ms(2), 0, false, lib);
        let noisy = b.add_library_module("lib.sub.noisy", ms(3), 0, sfx, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, sub, 1, ImportMode::Global).unwrap();
        b.add_import(sub, noisy, 1, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    #[test]
    fn clean_subtree_verifies() {
        let app = two_level_app(false);
        assert_eq!(verify_deferral(&app, "lib.sub"), Ok(()));
    }

    #[test]
    fn side_effectful_subtree_is_rejected() {
        let app = two_level_app(true);
        let err = verify_deferral(&app, "lib.sub").unwrap_err();
        assert_eq!(err.lint_id(), "deferral-side-effects");
        assert!(matches!(
            err,
            SafetyViolation::SideEffectfulModule { ref module, .. } if module == "lib.sub.noisy"
        ));
    }

    #[test]
    fn no_boundary_is_trivially_safe() {
        let app = two_level_app(true);
        // Nothing outside `lib` imports `lib.sub.noisy` directly, and
        // "lib.absent" names nothing: zero boundary imports, vacuous proof.
        assert_eq!(verify_deferral(&app, "lib.absent"), Ok(()));
    }

    /// handler imports lib.sub directly; the side-effectful lib root is
    /// loaded only implicitly, as lib.sub's parent — the case an
    /// import-edge-only subtree check cannot see.
    fn implicit_parent_app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let _root = b.add_library_module("lib", ms(5), 0, true, lib);
        let sub = b.add_library_module("lib.sub", ms(2), 0, false, lib);
        b.add_import(h, sub, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    #[test]
    fn implicit_parent_side_effects_are_rejected() {
        let app = implicit_parent_app();
        let err = verify_deferral(&app, "lib.sub").unwrap_err();
        assert_eq!(err.lint_id(), "deferral-parent-side-effects");
        assert!(matches!(
            err,
            SafetyViolation::ParentSideEffects { ref parent, .. } if parent == "lib"
        ));
    }

    #[test]
    fn touch_before_call_is_rejected() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(5), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        let api = b.add_function("lib.api", root, 1, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![
                Stmt {
                    line: 5,
                    kind: StmtKind::Touch(root),
                },
                Stmt {
                    line: 6,
                    kind: StmtKind::Call(CallSite {
                        target: api,
                        kind: CallKind::Direct,
                    }),
                },
            ],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let err = verify_deferral(&app, "lib").unwrap_err();
        assert_eq!(err.lint_id(), "deferral-touch-before-call");
        assert!(matches!(
            err,
            SafetyViolation::ImportTimeTouch { line: 5, .. }
        ));
    }

    #[test]
    fn touch_after_call_is_fine() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(5), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        let api = b.add_function("lib.api", root, 1, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![
                Stmt {
                    line: 5,
                    kind: StmtKind::Call(CallSite {
                        target: api,
                        kind: CallKind::Direct,
                    }),
                },
                Stmt {
                    line: 6,
                    kind: StmtKind::Touch(root),
                },
            ],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        assert_eq!(verify_deferral(&app, "lib"), Ok(()));
    }

    #[test]
    fn deferred_cycle_is_rejected() {
        let mut b = AppBuilder::new("t");
        let la = b.add_library("liba");
        let lb = b.add_library("libb");
        let h = b.add_app_module("handler", ms(1), 0);
        let a = b.add_library_module("liba", ms(2), 0, false, la);
        let bm = b.add_library_module("libb", ms(2), 0, false, lb);
        b.add_import(h, a, 2, ImportMode::Global).unwrap();
        b.add_import(h, bm, 3, ImportMode::Global).unwrap();
        // libb -> liba crosses into the candidate; liba -> libb is already
        // deferred. Flipping the boundary closes libb -> liba -> libb.
        b.add_import(bm, a, 1, ImportMode::Global).unwrap();
        b.add_import(a, bm, 1, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let err = verify_deferral(&app, "liba").unwrap_err();
        assert_eq!(err.lint_id(), "deferral-cycle");
        match err {
            SafetyViolation::DeferredCycle { cycle, .. } => {
                assert_eq!(cycle, vec!["libb", "liba", "libb"]);
            }
            other => panic!("wrong violation: {other:?}"),
        }
    }

    #[test]
    fn deployed_deferred_import_with_hidden_side_effects_is_flagged() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let _root = b.add_library_module("lib", ms(5), 0, true, lib);
        let sub = b.add_library_module("lib.sub", ms(2), 0, false, lib);
        b.add_import(h, sub, 2, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let err = verify_deferred_import(&app, h, sub).unwrap_err();
        assert_eq!(err.lint_id(), "deferral-parent-side-effects");
    }

    #[test]
    fn deployed_deferred_import_with_eager_cover_is_fine() {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(5), 0, true, lib);
        let sub = b.add_library_module("lib.sub", ms(2), 0, false, lib);
        // The side-effectful root *also* loads eagerly via a global import,
        // so the deferred lib.sub adds nothing unsound.
        b.add_import(h, root, 1, ImportMode::Global).unwrap();
        b.add_import(h, sub, 2, ImportMode::Deferred).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        assert_eq!(verify_deferred_import(&app, h, sub), Ok(()));
    }

    #[test]
    fn violation_spans_and_display() {
        let app = implicit_parent_app();
        let err = verify_deferral(&app, "lib.sub").unwrap_err();
        let (file, line) = err.span();
        assert_eq!(file, "lib/__init__.py");
        assert_eq!(line, 1);
        let text = err.to_string();
        assert!(text.contains("lib.sub"), "{text}");
        assert!(text.contains("ancestor"), "{text}");
    }
}
