//! The parallel fleet orchestrator.
//!
//! Fans a population of applications out across a pool of worker threads,
//! running the full SLIMSTART pipeline for each. Determinism discipline:
//!
//! 1. **Seeds first.** All per-app seeds are split from the experiment
//!    seed *sequentially, before any worker starts*
//!    ([`slimstart_simcore::SimRng::split_seed`]), so seed assignment is a
//!    pure function of (experiment seed, population index).
//! 2. **Index-addressed results.** Workers pull job indices from a shared
//!    counter — which app runs on which thread (and when) is racy and
//!    irrelevant — but each result lands in its population-index slot, so
//!    the assembled report order is fixed.
//! 3. **Wall-clock stays out.** Timing lives in [`FleetRunStats`],
//!    reported next to — never inside — the serialized [`FleetReport`].
//!
//! Consequently `threads = 1` and `threads = 8` produce byte-identical
//! report JSON for the same configuration (covered by
//! `tests/fleet_determinism.rs` and the `slimstart fleet` CLI contract).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use slimstart_appmodel::catalog::{fleet_population, CatalogApp};
use slimstart_core::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineOutcome};
use slimstart_core::resilience::DegradationLevel;
use slimstart_platform::chaos::{ChaosConfig, ChaosPlan};
use slimstart_platform::metrics::Speedup;
use slimstart_pyrt::snapshot::SnapshotStore;
use slimstart_simcore::SimRng;

use crate::report::{AppChaosRecord, AppRecord, FleetReport};

/// XOR tag deriving the fleet's chaos seed root from the experiment seed.
/// Distinct from the pipeline's own chaos stream tag, so fleet-assigned
/// chaos seeds never collide with seeds a standalone pipeline would derive.
const FLEET_CHAOS_TAG: u64 = 0xFEE7_CA05;

/// Fleet-run configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of applications (cycling the catalog when above 22).
    pub apps: usize,
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// The experiment seed every per-app stream is split from.
    pub seed: u64,
    /// Cold starts per measurement run (paper: 500).
    pub cold_starts: usize,
    /// Measurement runs averaged per application (`SLIMSTART_RUNS`
    /// methodology; the paper averages five).
    pub runs: usize,
    /// Template pipeline configuration (platform, sampler, detector,
    /// collector transport). Its `seed` and `cold_starts` are overridden
    /// per app from the fields above.
    pub pipeline: PipelineConfig,
    /// Fault-injection rates. [`ChaosConfig::DISABLED`] (the default)
    /// keeps every report byte-identical to a chaos-free build.
    pub chaos: ChaosConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            apps: 22,
            threads: 1,
            seed: 2025,
            cold_starts: 500,
            runs: 1,
            pipeline: PipelineConfig::default(),
            chaos: ChaosConfig::DISABLED,
        }
    }
}

impl FleetConfig {
    /// Sets the fleet size.
    #[must_use]
    pub fn with_apps(mut self, apps: usize) -> Self {
        self.apps = apps;
        self
    }

    /// Sets the worker-pool size.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the experiment seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cold starts per measurement run.
    #[must_use]
    pub fn with_cold_starts(mut self, cold_starts: usize) -> Self {
        self.cold_starts = cold_starts;
        self
    }

    /// Sets the measurement runs averaged per application.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the template pipeline configuration.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the fault-injection rates applied to every application.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }
}

/// Errors from a fleet run, tagged with the failing application.
#[derive(Debug, Clone)]
pub enum FleetError {
    /// The catalog blueprint failed to synthesize.
    Build {
        /// Catalog code of the failing application.
        code: String,
        /// The blueprint error, rendered.
        message: String,
    },
    /// The application's pipeline run failed.
    Pipeline {
        /// Catalog code of the failing application.
        code: String,
        /// The underlying pipeline error.
        source: PipelineError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Build { code, message } => {
                write!(f, "{code}: blueprint failed: {message}")
            }
            FleetError::Pipeline { code, source } => {
                write!(f, "{code}: pipeline failed: {source}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Nondeterministic facts about a fleet run — wall-clock throughput.
///
/// Kept separate from [`FleetReport`] so the serialized report stays
/// byte-identical across worker-pool sizes.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunStats {
    /// Total wall-clock time of the run.
    pub wall_clock: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Applications completed per wall-clock second.
    pub apps_per_second: f64,
}

impl fmt::Display for FleetRunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wall-clock {:.2?} across {} thread(s) ({:.2} apps/s)",
            self.wall_clock, self.threads, self.apps_per_second
        )
    }
}

/// Field-wise mean of a non-empty speedup set — the paper's
/// "averaged over five iterative runs" methodology.
///
/// # Panics
///
/// Panics when `speedups` is empty.
pub fn mean_speedup(speedups: &[Speedup]) -> Speedup {
    assert!(!speedups.is_empty(), "need at least one speedup");
    let n = speedups.len() as f64;
    Speedup {
        init: speedups.iter().map(|s| s.init).sum::<f64>() / n,
        load: speedups.iter().map(|s| s.load).sum::<f64>() / n,
        e2e: speedups.iter().map(|s| s.e2e).sum::<f64>() / n,
        p99_init: speedups.iter().map(|s| s.p99_init).sum::<f64>() / n,
        p99_load: speedups.iter().map(|s| s.p99_load).sum::<f64>() / n,
        p99_e2e: speedups.iter().map(|s| s.p99_e2e).sum::<f64>() / n,
        mem: speedups.iter().map(|s| s.mem).sum::<f64>() / n,
    }
}

/// The orchestrator.
#[derive(Debug, Clone, Default)]
pub struct FleetOrchestrator {
    config: FleetConfig,
}

impl FleetOrchestrator {
    /// Creates an orchestrator with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetOrchestrator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the fleet over the default population: `config.apps`
    /// applications cycled from the catalog.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index application failure.
    pub fn run(&self) -> Result<(FleetReport, FleetRunStats), FleetError> {
        self.run_population(&fleet_population(self.config.apps))
    }

    /// Runs the fleet over an explicit population.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index application failure.
    pub fn run_population(
        &self,
        population: &[CatalogApp],
    ) -> Result<(FleetReport, FleetRunStats), FleetError> {
        let cfg = &self.config;
        let start = Instant::now();

        // Split every per-app seed sequentially, up front: seed assignment
        // must be a pure function of (experiment seed, index) so that the
        // worker pool's scheduling cannot perturb any app's randomness.
        let mut root = SimRng::seed_from(cfg.seed);
        // Chaos seeds come from their own root stream: enabling fault
        // injection must not shift any app's main simulation seed.
        let mut chaos_root = SimRng::seed_from(cfg.seed ^ FLEET_CHAOS_TAG);
        let jobs: Vec<(usize, &CatalogApp, u64, u64)> = population
            .iter()
            .enumerate()
            .map(|(i, entry)| (i, entry, root.split_seed(), chaos_root.split_seed()))
            .collect();

        let threads = cfg.threads.max(1).min(jobs.len().max(1));
        let slots: Vec<Mutex<Option<Result<AppRecord, FleetError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let jobs = &jobs;
                let slots = &slots;
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(index, entry, seed, chaos_seed)) = jobs.get(i) else {
                        break;
                    };
                    let record = run_app(cfg, index, entry, seed, chaos_seed);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(record);
                });
            }
        });

        let mut apps = Vec::with_capacity(jobs.len());
        for slot in slots {
            let record = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("scoped worker fills every slot");
            apps.push(record?);
        }

        let report = FleetReport::from_records(cfg.seed, cfg.cold_starts, cfg.runs, apps);
        let wall_clock = start.elapsed();
        let stats = FleetRunStats {
            wall_clock,
            threads,
            apps_per_second: if wall_clock.as_secs_f64() > 0.0 {
                report.apps.len() as f64 / wall_clock.as_secs_f64()
            } else {
                0.0
            },
        };
        Ok((report, stats))
    }
}

/// Runs one application's pipeline `cfg.runs` times (derived seeds, as
/// `slimstart-bench`'s averaged runner does) and distills an [`AppRecord`].
fn run_app(
    cfg: &FleetConfig,
    index: usize,
    entry: &CatalogApp,
    seed: u64,
    chaos_seed: u64,
) -> Result<AppRecord, FleetError> {
    let runs = cfg.runs.max(1);
    // One plan spans all of this app's runs, so its fault counters
    // accumulate app-wide while the stream stays a pure function of
    // (experiment seed, population index).
    let chaos_plan =
        (!cfg.chaos.is_disabled()).then(|| Arc::new(ChaosPlan::from_seed(cfg.chaos, chaos_seed)));
    // One snapshot store per app, never shared across apps: restores are
    // byte-identical to replays, but keeping stores app-local means worker
    // scheduling cannot even share cache state across population indices —
    // thread-count independence stays structural, not incidental.
    let snapshot_store = SnapshotStore::default_for_env();
    let mut speedups = Vec::with_capacity(runs);
    let mut last: Option<PipelineOutcome> = None;
    for r in 0..runs {
        let run_seed = seed.wrapping_add(r as u64 * 7919);
        let built = entry.build(run_seed).map_err(|e| FleetError::Build {
            code: entry.code.to_string(),
            message: e.to_string(),
        })?;
        let mut pipeline_cfg = cfg
            .pipeline
            .clone()
            .with_seed(run_seed)
            .with_cold_starts(cfg.cold_starts);
        // Override whatever store the template platform carries (possibly
        // one shared fleet-wide through the clone) with this app's own.
        pipeline_cfg.platform.snapshot_store = snapshot_store.clone();
        if let Some(plan) = &chaos_plan {
            pipeline_cfg = pipeline_cfg.with_chaos_plan(Arc::clone(plan));
        }
        let outcome = Pipeline::new(pipeline_cfg)
            .run(&built.app, &entry.workload_weights())
            .map_err(|e| FleetError::Pipeline {
                code: entry.code.to_string(),
                source: e,
            })?;
        speedups.push(outcome.speedup);
        last = Some(outcome);
    }
    let out = last.expect("runs >= 1");
    let rolled_back =
        (out.pre_deploy.has_errors() && out.report.gate_passed && !out.report.findings.is_empty())
            || out.resilience.degradation == DegradationLevel::RolledBack;
    let chaos = chaos_plan.map(|plan| AppChaosRecord {
        faults: plan.total_injected(),
        profile_retries: out.resilience.profile_retries,
        deploy_retries: out.resilience.deploy_retries,
        degradation: out.resilience.degradation.label(),
        recovered: out.resilience.recovered,
    });
    Ok(AppRecord {
        index,
        code: entry.code.to_string(),
        name: entry.name.to_string(),
        seed,
        gate_passed: out.report.gate_passed,
        optimized: out.optimized_anything(),
        rolled_back,
        findings: out.report.findings.len(),
        deferred: out
            .optimization
            .as_ref()
            .map_or(0, |o| o.deferred_packages.len()),
        analyzer_errors: out.pre_deploy.error_count(),
        analyzer_warnings: out.pre_deploy.warning_count(),
        speedup: mean_speedup(&speedups),
        baseline_init_ms: out.baseline.mean_init_ms,
        baseline_e2e_ms: out.baseline.mean_e2e_ms,
        optimized_e2e_ms: out.optimized.mean_e2e_ms,
        chaos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_platform::PlatformConfig;

    fn quick_fleet(apps: usize, threads: usize) -> FleetOrchestrator {
        FleetOrchestrator::new(
            FleetConfig::default()
                .with_apps(apps)
                .with_threads(threads)
                .with_seed(7)
                .with_cold_starts(10)
                .with_pipeline(
                    PipelineConfig::default()
                        .with_platform(PlatformConfig::default().without_jitter()),
                ),
        )
    }

    #[test]
    fn small_fleet_produces_per_app_rows_in_order() {
        let (report, stats) = quick_fleet(4, 2).run().unwrap();
        assert_eq!(report.apps.len(), 4);
        for (i, app) in report.apps.iter().enumerate() {
            assert_eq!(app.index, i);
        }
        assert!(stats.threads <= 2);
        assert!(report.init_speedup.mean >= 1.0);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let (seq, _) = quick_fleet(4, 1).run().unwrap();
        let (par, _) = quick_fleet(4, 4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn runs_averaging_is_applied() {
        let one = quick_fleet(1, 1);
        let (r1, _) = one.run().unwrap();
        let two = FleetOrchestrator::new(one.config().clone().with_runs(2));
        let (r2, _) = two.run().unwrap();
        assert_eq!(r2.runs, 2);
        // Averaged speedups differ from the single-run row (distinct
        // derived seeds), while staying in a plausible band.
        assert!(r2.apps[0].speedup.init > 1.0);
        assert!(r1.apps[0].seed == r2.apps[0].seed, "base seed is stable");
    }

    #[test]
    fn chaos_fleet_is_deterministic_across_thread_counts() {
        let chaotic = |threads: usize| {
            FleetOrchestrator::new(
                quick_fleet(4, threads)
                    .config()
                    .clone()
                    .with_chaos(ChaosConfig::uniform(0.3)),
            )
        };
        let (seq, _) = chaotic(1).run().unwrap();
        let (par, _) = chaotic(4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
        assert!(seq.chaos.is_some(), "chaos summary present when enabled");
        assert!(seq.to_json().contains("\"chaos\""));
    }

    #[test]
    fn disabled_chaos_leaves_the_report_untouched() {
        let (plain, _) = quick_fleet(3, 2).run().unwrap();
        let zeroed = FleetOrchestrator::new(
            quick_fleet(3, 2)
                .config()
                .clone()
                .with_chaos(ChaosConfig::uniform(0.0)),
        );
        let (zero, _) = zeroed.run().unwrap();
        assert_eq!(plain.to_json(), zero.to_json());
        assert!(!plain.to_json().contains("chaos"));
    }

    #[test]
    fn seeds_are_pure_function_of_experiment_seed_and_index() {
        let (a, _) = quick_fleet(4, 3).run().unwrap();
        let (b, _) = quick_fleet(4, 1).run().unwrap();
        let seeds_a: Vec<u64> = a.apps.iter().map(|r| r.seed).collect();
        let seeds_b: Vec<u64> = b.apps.iter().map(|r| r.seed).collect();
        assert_eq!(seeds_a, seeds_b);
        // And they match a hand-rolled sequential split.
        let mut root = SimRng::seed_from(7);
        let expected: Vec<u64> = (0..4).map(|_| root.split_seed()).collect();
        assert_eq!(seeds_a, expected);
    }
}
