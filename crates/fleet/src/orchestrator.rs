//! The parallel fleet orchestrator.
//!
//! Fans a population of applications out across a pool of worker threads
//! via a chunked work-stealing scheduler, running the full SLIMSTART
//! pipeline for each and folding finished apps into a streaming
//! [`FleetAggregator`]. Determinism discipline:
//!
//! 1. **Seeds first.** All per-app seeds are split from the experiment
//!    seed *sequentially, before any worker starts*
//!    ([`slimstart_simcore::SimRng::split_seed`]), so seed assignment is a
//!    pure function of (experiment seed, population index) — which worker
//!    steals which chunk (and when) is racy and irrelevant.
//! 2. **Index-ordered aggregation.** The population is cut into
//!    fixed-size chunks of consecutive indices. Each worker folds its
//!    chunk's apps in ascending index order into a chunk-local
//!    aggregator partial; the orchestrating thread merges chunk partials
//!    in ascending chunk order through a reorder buffer. The fold/merge
//!    tree is therefore a fixed function of (population, chunk size),
//!    never of scheduling — and the aggregator's fixed-point sums make
//!    even the float math associativity-exact.
//! 3. **Wall-clock stays out.** Timing and pool geometry live in
//!    [`FleetRunStats`], reported next to — never inside — the
//!    serialized [`FleetReport`].
//!
//! Consequently `threads = 1` and `threads = 8` produce byte-identical
//! report JSON for the same configuration (covered by
//! `tests/fleet_determinism.rs`, `tests/fleet_streaming_equivalence.rs`
//! and the `slimstart fleet` CLI contract), while memory stays constant:
//! no per-app record vector is ever retained at 10k scale.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use slimstart_appmodel::catalog::{fleet_population, CatalogApp};
use slimstart_core::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineOutcome};
use slimstart_core::resilience::DegradationLevel;
use slimstart_platform::chaos::{ChaosConfig, ChaosPlan};
use slimstart_platform::metrics::Speedup;
use slimstart_pyrt::snapshot::SnapshotStore;
use slimstart_pyrt::zygote::{ZygoteCounters, ZygoteImage};
use slimstart_simcore::SimRng;

use crate::report::{
    AppChaosRecord, AppRecord, AppSnapshotRecord, AppZygoteRecord, FleetAggregator, FleetReport,
};
use crate::snapshot_pool::NodeSnapshotPool;
use crate::zygote_pool::{NodeZygotePool, ZygotePlan};

/// XOR tag deriving the fleet's chaos seed root from the experiment seed.
/// Distinct from the pipeline's own chaos stream tag, so fleet-assigned
/// chaos seeds never collide with seeds a standalone pipeline would derive.
const FLEET_CHAOS_TAG: u64 = 0xFEE7_CA05;

/// Population indices per work-queue item. Large enough that queue
/// traffic is micro-rare next to per-app pipeline work, small enough
/// that a 10k-app fleet still yields ~300 stealable units.
pub const DEFAULT_CHUNK: usize = 32;

/// A per-app stall hook: given the population index, how long the worker
/// should sleep before running that app. Models the collector/deploy
/// round-trip latency a real fleet pays per application — overlappable
/// across workers, hence what a thread sweep measures on I/O-bound
/// populations. Also the test hook the work-queue property suite uses to
/// perturb scheduling without touching seeds.
pub type StallHook = Arc<dyn Fn(usize) -> Duration + Send + Sync>;

/// One work-queue item: a chunk of consecutive population indices.
struct ChunkItem {
    id: usize,
    range: Range<usize>,
}

/// What a worker sends home per chunk: the in-order aggregated partial,
/// or the chunk's lowest-index failure.
type ChunkResult = Result<FleetAggregator, (usize, FleetError)>;

/// Fleet-run configuration.
#[derive(Clone)]
pub struct FleetConfig {
    /// Number of applications (cycling the catalog when above 22).
    pub apps: usize,
    /// Worker threads (clamped to at least 1, and to the number of work
    /// chunks the population actually yields).
    pub threads: usize,
    /// The experiment seed every per-app stream is split from.
    pub seed: u64,
    /// Cold starts per measurement run (paper: 500).
    pub cold_starts: usize,
    /// Measurement runs averaged per application (`SLIMSTART_RUNS`
    /// methodology; the paper averages five).
    pub runs: usize,
    /// Population indices per work-stealing chunk (clamped to at least
    /// 1). Changing it regroups the aggregation tree, which is harmless:
    /// chunk partials merge in index order and every fold is
    /// associativity-exact, so the report bytes do not move.
    pub chunk: usize,
    /// Optional per-app stall hook (see [`StallHook`]). `None` runs
    /// apps back to back.
    pub stall: Option<StallHook>,
    /// Template pipeline configuration (platform, sampler, detector,
    /// collector transport). Its `seed` and `cold_starts` are overridden
    /// per app from the fields above.
    pub pipeline: PipelineConfig,
    /// Fault-injection rates. [`ChaosConfig::DISABLED`] (the default)
    /// keeps every report byte-identical to a chaos-free build.
    pub chaos: ChaosConfig,
    /// Node-level snapshot budgeting. `None` (the default) keeps PR 5
    /// behavior: per-app unbounded full-stream stores controlled by
    /// `SLIMSTART_NO_SNAPSHOT`, and no snapshot counters in the report.
    pub snapshot: Option<NodeSnapshotPool>,
    /// Node-level zygote pool (live dependency sharing). `None` (the
    /// default) keeps every cold start booting an empty runtime and the
    /// report byte-identical to zygote-free builds.
    pub zygote: Option<NodeZygotePool>,
}

impl fmt::Debug for FleetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetConfig")
            .field("apps", &self.apps)
            .field("threads", &self.threads)
            .field("seed", &self.seed)
            .field("cold_starts", &self.cold_starts)
            .field("runs", &self.runs)
            .field("chunk", &self.chunk)
            .field("stall", &self.stall.as_ref().map(|_| "<hook>"))
            .field("pipeline", &self.pipeline)
            .field("chaos", &self.chaos)
            .field("snapshot", &self.snapshot)
            .field("zygote", &self.zygote)
            .finish()
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            apps: 22,
            threads: 1,
            seed: 2025,
            cold_starts: 500,
            runs: 1,
            chunk: DEFAULT_CHUNK,
            stall: None,
            pipeline: PipelineConfig::default(),
            chaos: ChaosConfig::DISABLED,
            snapshot: None,
            zygote: None,
        }
    }
}

impl FleetConfig {
    /// Sets the fleet size.
    #[must_use]
    pub fn with_apps(mut self, apps: usize) -> Self {
        self.apps = apps;
        self
    }

    /// Sets the worker-pool size.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the experiment seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cold starts per measurement run.
    #[must_use]
    pub fn with_cold_starts(mut self, cold_starts: usize) -> Self {
        self.cold_starts = cold_starts;
        self
    }

    /// Sets the measurement runs averaged per application.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the work-stealing chunk size.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Installs a per-app stall hook.
    #[must_use]
    pub fn with_stall_hook(mut self, stall: StallHook) -> Self {
        self.stall = Some(stall);
        self
    }

    /// Installs a uniform per-app stall of `micros` microseconds (the
    /// `slimstart fleet --stall-us` surface). Zero removes the hook.
    #[must_use]
    pub fn with_stall_micros(mut self, micros: u64) -> Self {
        self.stall = (micros > 0)
            .then(|| Arc::new(move |_: usize| Duration::from_micros(micros)) as StallHook);
        self
    }

    /// Sets the template pipeline configuration.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the fault-injection rates applied to every application.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Installs a node-level snapshot pool (budgeted, working-set-lazy
    /// stores plus snapshot counters in the report).
    #[must_use]
    pub fn with_snapshot_pool(mut self, pool: NodeSnapshotPool) -> Self {
        self.snapshot = Some(pool);
        self
    }

    /// Installs a node-level zygote pool (fork-based live dependency
    /// sharing plus zygote counters in the report, schema v4).
    #[must_use]
    pub fn with_zygote_pool(mut self, pool: NodeZygotePool) -> Self {
        self.zygote = Some(pool);
        self
    }
}

/// Errors from a fleet run, tagged with the failing application.
#[derive(Debug, Clone)]
pub enum FleetError {
    /// The catalog blueprint failed to synthesize.
    Build {
        /// Catalog code of the failing application.
        code: String,
        /// The blueprint error, rendered.
        message: String,
    },
    /// The application's pipeline run failed.
    Pipeline {
        /// Catalog code of the failing application.
        code: String,
        /// The underlying pipeline error.
        source: PipelineError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Build { code, message } => {
                write!(f, "{code}: blueprint failed: {message}")
            }
            FleetError::Pipeline { code, source } => {
                write!(f, "{code}: pipeline failed: {source}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Nondeterministic facts about a fleet run — wall-clock throughput and
/// pool geometry.
///
/// Kept separate from [`FleetReport`] so the serialized report stays
/// byte-identical across worker-pool sizes.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunStats {
    /// Total wall-clock time of the run.
    pub wall_clock: Duration,
    /// Worker threads actually spawned (the configured count clamped to
    /// the number of work chunks).
    pub threads: usize,
    /// Applications completed.
    pub apps: usize,
    /// Applications completed per wall-clock second (0.0 for an empty
    /// fleet or an immeasurably fast run — never NaN or infinite).
    pub apps_per_second: f64,
    /// Peak resident size of the aggregation state on the orchestrating
    /// thread (merged aggregate plus reorder-buffered chunk partials),
    /// in bytes. Bounded by chunk count in flight, not fleet size.
    pub aggregate_peak_bytes: usize,
}

impl FleetRunStats {
    /// Assembles run stats, guarding the throughput division: zero apps
    /// or a zero-duration clock report 0.0 apps/s rather than NaN/inf.
    pub fn new(
        wall_clock: Duration,
        threads: usize,
        apps: usize,
        aggregate_peak_bytes: usize,
    ) -> Self {
        let secs = wall_clock.as_secs_f64();
        let apps_per_second = if apps == 0 || secs <= 0.0 {
            0.0
        } else {
            apps as f64 / secs
        };
        FleetRunStats {
            wall_clock,
            threads,
            apps,
            apps_per_second,
            aggregate_peak_bytes,
        }
    }
}

impl fmt::Display for FleetRunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wall-clock {:.2?} across {} thread(s) ({:.2} apps/s, peak aggregate {} B)",
            self.wall_clock, self.threads, self.apps_per_second, self.aggregate_peak_bytes
        )
    }
}

/// Field-wise mean of a non-empty speedup set — the paper's
/// "averaged over five iterative runs" methodology.
///
/// # Panics
///
/// Panics when `speedups` is empty.
pub fn mean_speedup(speedups: &[Speedup]) -> Speedup {
    assert!(!speedups.is_empty(), "need at least one speedup");
    let n = speedups.len() as f64;
    Speedup {
        init: speedups.iter().map(|s| s.init).sum::<f64>() / n,
        load: speedups.iter().map(|s| s.load).sum::<f64>() / n,
        e2e: speedups.iter().map(|s| s.e2e).sum::<f64>() / n,
        p99_init: speedups.iter().map(|s| s.p99_init).sum::<f64>() / n,
        p99_load: speedups.iter().map(|s| s.p99_load).sum::<f64>() / n,
        p99_e2e: speedups.iter().map(|s| s.p99_e2e).sum::<f64>() / n,
        mem: speedups.iter().map(|s| s.mem).sum::<f64>() / n,
    }
}

/// Splits the per-app seed pairs for a population, sequentially and up
/// front: seed assignment is a pure function of (experiment seed,
/// population index), never of scheduling.
fn split_jobs(seed: u64, population: &[CatalogApp]) -> Vec<(usize, &CatalogApp, u64, u64)> {
    let mut root = SimRng::seed_from(seed);
    // Chaos seeds come from their own root stream: enabling fault
    // injection must not shift any app's main simulation seed.
    let mut chaos_root = SimRng::seed_from(seed ^ FLEET_CHAOS_TAG);
    population
        .iter()
        .enumerate()
        .map(|(i, entry)| (i, entry, root.split_seed(), chaos_root.split_seed()))
        .collect()
}

/// Plans the per-node zygotes sequentially, before any worker starts:
/// the plan is a pure function of the pool geometry and the population's
/// run-0 builds (each app's first measurement run uses its base seed),
/// so which worker later runs which app cannot move a single resident
/// module.
fn plan_zygotes(
    cfg: &FleetConfig,
    jobs: &[(usize, &CatalogApp, u64, u64)],
) -> Result<Option<ZygotePlan>, FleetError> {
    let Some(pool) = &cfg.zygote else {
        return Ok(None);
    };
    let mut apps = Vec::with_capacity(jobs.len());
    for &(index, entry, seed, _) in jobs {
        let built = entry.build(seed).map_err(|e| FleetError::Build {
            code: entry.code.to_string(),
            message: e.to_string(),
        })?;
        apps.push((index, built.app));
    }
    Ok(Some(pool.plan(&apps)))
}

/// Pops the next chunk: local deque first, then a batch from the global
/// injector, then other workers' queues.
fn find_chunk(
    local: &Worker<ChunkItem>,
    injector: &Injector<ChunkItem>,
    stealers: &[Stealer<ChunkItem>],
) -> Option<ChunkItem> {
    if let Some(item) = local.pop() {
        return Some(item);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(item) => return Some(item),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for stealer in stealers {
        loop {
            match stealer.steal() {
                Steal::Success(item) => return Some(item),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

/// The orchestrator.
#[derive(Debug, Clone, Default)]
pub struct FleetOrchestrator {
    config: FleetConfig,
}

impl FleetOrchestrator {
    /// Creates an orchestrator with the given configuration.
    pub fn new(config: FleetConfig) -> Self {
        FleetOrchestrator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the fleet over the default population: `config.apps`
    /// applications cycled from the catalog.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index application failure.
    pub fn run(&self) -> Result<(FleetReport, FleetRunStats), FleetError> {
        self.run_population(&fleet_population(self.config.apps))
    }

    /// Runs the fleet over an explicit population through the
    /// work-stealing pool and the streaming aggregator.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index application failure. Every chunk still
    /// runs to completion (or its own first failure) before the error is
    /// selected, so the reported failure does not depend on scheduling.
    pub fn run_population(
        &self,
        population: &[CatalogApp],
    ) -> Result<(FleetReport, FleetRunStats), FleetError> {
        let cfg = &self.config;
        let start = Instant::now();

        let jobs = split_jobs(cfg.seed, population);
        let zygote_plan = plan_zygotes(cfg, &jobs)?;
        let chunk_size = cfg.chunk.max(1);
        let chunk_count = jobs.len().div_ceil(chunk_size);
        let threads = cfg.threads.max(1).min(chunk_count.max(1));

        // Chunks of consecutive indices are the unit of scheduling: any
        // worker may run any chunk, but the fold order *within* a chunk
        // and the merge order *across* chunks are fixed by index.
        let injector = Injector::new();
        for id in 0..chunk_count {
            let lo = id * chunk_size;
            let hi = (lo + chunk_size).min(jobs.len());
            injector.push(ChunkItem { id, range: lo..hi });
        }

        let locals: Vec<Worker<ChunkItem>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<ChunkItem>> = locals.iter().map(Worker::stealer).collect();
        let (tx, rx) = channel::unbounded::<(usize, ChunkResult)>();

        let mut first_error: Option<(usize, FleetError)> = None;
        let mut aggregate = FleetAggregator::new();
        let mut peak_bytes = aggregate.approx_bytes();

        std::thread::scope(|scope| {
            for local in locals {
                let tx = tx.clone();
                let jobs = &jobs;
                let zygote_plan = &zygote_plan;
                let injector = &injector;
                let stealers = &stealers;
                scope.spawn(move || {
                    while let Some(item) = find_chunk(&local, injector, stealers) {
                        let mut partial = FleetAggregator::new();
                        let mut failure: Option<(usize, FleetError)> = None;
                        for &(index, entry, seed, chaos_seed) in &jobs[item.range.clone()] {
                            if let Some(stall) = &cfg.stall {
                                let pause = stall(index);
                                if !pause.is_zero() {
                                    std::thread::sleep(pause);
                                }
                            }
                            match run_app(cfg, index, entry, seed, chaos_seed, zygote_plan.as_ref())
                            {
                                Ok(record) => partial.fold(record),
                                Err(error) => {
                                    failure = Some((index, error));
                                    break;
                                }
                            }
                        }
                        let result = match failure {
                            None => Ok(partial),
                            Some(err) => Err(err),
                        };
                        if tx.send((item.id, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            // Streaming merge: chunk partials arrive in completion order,
            // a reorder buffer releases them in chunk order. Peak resident
            // size is the merged aggregate plus whatever the buffer holds.
            let mut pending: BTreeMap<usize, FleetAggregator> = BTreeMap::new();
            let mut next_chunk = 0usize;
            for (id, result) in rx {
                match result {
                    Ok(partial) => {
                        pending.insert(id, partial);
                        while let Some(partial) = pending.remove(&next_chunk) {
                            aggregate.merge(partial);
                            next_chunk += 1;
                        }
                    }
                    Err((index, error)) => {
                        let lower = first_error.as_ref().is_none_or(|(i, _)| index < *i);
                        if lower {
                            first_error = Some((index, error));
                        }
                    }
                }
                let resident = aggregate.approx_bytes()
                    + pending
                        .values()
                        .map(FleetAggregator::approx_bytes)
                        .sum::<usize>();
                peak_bytes = peak_bytes.max(resident);
            }
        });

        if let Some((_, error)) = first_error {
            return Err(error);
        }
        debug_assert_eq!(aggregate.count(), jobs.len(), "every chunk merged");
        let report = aggregate.finish(cfg.seed, cfg.cold_starts, cfg.runs);
        let stats = FleetRunStats::new(start.elapsed(), threads, report.fleet_size, peak_bytes);
        Ok((report, stats))
    }

    /// Runs the fleet sequentially and returns every retained
    /// [`AppRecord`] — the memory-proportional path behind the
    /// differential oracle (`tests/fleet_streaming_equivalence.rs`) and
    /// small interactive inspections. The records feed
    /// [`crate::report::FleetSummary::from_records`], which must produce
    /// JSON byte-identical to [`run_population`](Self::run_population)'s
    /// streaming aggregation.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index application failure.
    pub fn run_records(&self, population: &[CatalogApp]) -> Result<Vec<AppRecord>, FleetError> {
        let cfg = &self.config;
        let jobs = split_jobs(cfg.seed, population);
        let zygote_plan = plan_zygotes(cfg, &jobs)?;
        jobs.into_iter()
            .map(|(index, entry, seed, chaos_seed)| {
                run_app(cfg, index, entry, seed, chaos_seed, zygote_plan.as_ref())
            })
            .collect()
    }
}

/// Runs one application's pipeline `cfg.runs` times (derived seeds, as
/// `slimstart-bench`'s averaged runner does) and distills an [`AppRecord`].
fn run_app(
    cfg: &FleetConfig,
    index: usize,
    entry: &CatalogApp,
    seed: u64,
    chaos_seed: u64,
    zygote_plan: Option<&ZygotePlan>,
) -> Result<AppRecord, FleetError> {
    let runs = cfg.runs.max(1);
    // One plan spans all of this app's runs, so its fault counters
    // accumulate app-wide while the stream stays a pure function of
    // (experiment seed, population index).
    let chaos_plan =
        (!cfg.chaos.is_disabled()).then(|| Arc::new(ChaosPlan::from_seed(cfg.chaos, chaos_seed)));
    let zygote_spec = zygote_plan.and_then(|plan| {
        plan.spec(index)
            .map(|spec| (spec.clone(), plan.fork_cost()))
    });
    // One snapshot store per app, never shared across apps: restores are
    // byte-identical to replays, but keeping stores app-local means worker
    // scheduling cannot even share cache state across population indices —
    // thread-count independence stays structural, not incidental. With a
    // node pool the store is the app's bounded fair share of its node's
    // budget (explicit constructor, no env sniffing); without one it is
    // the PR 5 unbounded default gated on `SLIMSTART_NO_SNAPSHOT`. When a
    // zygote pool shares the node, its resident bytes come off the node's
    // snapshot budget first — zygotes and snapshot caches compete for the
    // same modeled memory.
    let snapshot_store = match (&cfg.snapshot, &zygote_spec) {
        (Some(pool), Some((spec, _))) => {
            Some(pool.store_for_reserved(index, spec.node_reserve_bytes))
        }
        (Some(pool), None) => Some(pool.store_for(index)),
        (None, _) => SnapshotStore::default_for_env(),
    };
    // One counter block spans the app's containers and runs; runs are
    // sequential, so the totals are deterministic.
    let zygote_counters = zygote_spec
        .as_ref()
        .map(|_| Arc::new(ZygoteCounters::default()));
    let mut zygote_residency: Option<(u64, u64)> = None;
    let mut speedups = Vec::with_capacity(runs);
    let mut last: Option<PipelineOutcome> = None;
    for r in 0..runs {
        let run_seed = seed.wrapping_add(r as u64 * 7919);
        let built = entry.build(run_seed).map_err(|e| FleetError::Build {
            code: entry.code.to_string(),
            message: e.to_string(),
        })?;
        let mut pipeline_cfg = cfg
            .pipeline
            .clone()
            .with_seed(run_seed)
            .with_cold_starts(cfg.cold_starts);
        // Override whatever store the template platform carries (possibly
        // one shared fleet-wide through the clone) with this app's own.
        pipeline_cfg.platform.snapshot_store = snapshot_store.clone();
        if let Some((spec, fork_cost)) = &zygote_spec {
            // The image maps the node ranking onto this run's build (a
            // name-level view, so it is rebuilt per run over the run's
            // module ids) and shares the app-wide counters.
            let image = Arc::new(ZygoteImage::for_app(
                &built.app,
                &spec.ranked,
                spec.resident_prefix,
                *fork_cost,
                Arc::clone(zygote_counters.as_ref().expect("counters with spec")),
            ));
            zygote_residency = Some((image.resident_count() as u64, image.resident_bytes()));
            pipeline_cfg.platform.zygote = Some(image);
        }
        if let Some(plan) = &chaos_plan {
            pipeline_cfg = pipeline_cfg.with_chaos_plan(Arc::clone(plan));
        }
        let outcome = Pipeline::new(pipeline_cfg)
            .run(&built.app, &entry.workload_weights())
            .map_err(|e| FleetError::Pipeline {
                code: entry.code.to_string(),
                source: e,
            })?;
        speedups.push(outcome.speedup);
        last = Some(outcome);
    }
    let out = last.expect("runs >= 1");
    let rolled_back =
        (out.pre_deploy.has_errors() && out.report.gate_passed && !out.report.findings.is_empty())
            || out.resilience.degradation == DegradationLevel::RolledBack;
    // Distill the store's counters into the record before the store
    // drops with this app — the report is the only thing retained.
    let snapshot = match (&cfg.snapshot, &snapshot_store) {
        (Some(_), Some(store)) => {
            let stats = store.stats();
            Some(AppSnapshotRecord {
                hits: stats.hits,
                misses: stats.misses,
                evictions: stats.evictions,
                faulted_loads: stats.faulted_loads,
                resident_bytes: stats.resident_bytes,
            })
        }
        _ => None,
    };
    let chaos = chaos_plan.map(|plan| AppChaosRecord {
        faults: plan.total_injected(),
        profile_retries: out.resilience.profile_retries,
        deploy_retries: out.resilience.deploy_retries,
        degradation: out.resilience.degradation.label(),
        recovered: out.resilience.recovered,
    });
    let zygote = match (&zygote_counters, zygote_residency) {
        (Some(counters), Some((resident_modules, resident_bytes))) => Some(AppZygoteRecord {
            forks: counters.forks(),
            forked_loads: counters.forked_loads(),
            resident_modules,
            resident_bytes,
        }),
        _ => None,
    };
    Ok(AppRecord {
        index,
        code: entry.code.to_string(),
        name: entry.name.to_string(),
        seed,
        gate_passed: out.report.gate_passed,
        optimized: out.optimized_anything(),
        rolled_back,
        findings: out.report.findings.len(),
        deferred: out
            .optimization
            .as_ref()
            .map_or(0, |o| o.deferred_packages.len()),
        analyzer_errors: out.pre_deploy.error_count(),
        analyzer_warnings: out.pre_deploy.warning_count(),
        speedup: mean_speedup(&speedups),
        baseline_init_ms: out.baseline.mean_init_ms,
        baseline_e2e_ms: out.baseline.mean_e2e_ms,
        optimized_e2e_ms: out.optimized.mean_e2e_ms,
        chaos,
        snapshot,
        zygote,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FleetSummary;
    use slimstart_platform::PlatformConfig;

    fn quick_fleet(apps: usize, threads: usize) -> FleetOrchestrator {
        FleetOrchestrator::new(
            FleetConfig::default()
                .with_apps(apps)
                .with_threads(threads)
                .with_seed(7)
                .with_cold_starts(10)
                .with_pipeline(
                    PipelineConfig::default()
                        .with_platform(PlatformConfig::default().without_jitter()),
                ),
        )
    }

    #[test]
    fn small_fleet_produces_per_app_rows_in_order() {
        let (report, stats) = quick_fleet(4, 2).run().unwrap();
        assert_eq!(report.fleet_size, 4);
        assert_eq!(report.detail.len(), 4);
        for (i, app) in report.detail.iter().enumerate() {
            assert_eq!(app.index, i);
        }
        assert!(!report.detail_truncated);
        assert!(stats.threads <= 2);
        assert!(report.init_speedup.mean >= 1.0);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let (seq, _) = quick_fleet(4, 1).run().unwrap();
        let (par, _) = quick_fleet(4, 4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn chunk_size_does_not_change_the_report() {
        let (big, _) = quick_fleet(5, 2).run().unwrap();
        let tiny = FleetOrchestrator::new(quick_fleet(5, 2).config().clone().with_chunk(1));
        let (small, _) = tiny.run().unwrap();
        assert_eq!(big.to_json(), small.to_json());
    }

    #[test]
    fn streaming_run_matches_the_retained_oracle() {
        let orchestrator = quick_fleet(6, 3);
        let population = fleet_population(6);
        let (streamed, _) = orchestrator.run_population(&population).unwrap();
        let records = orchestrator.run_records(&population).unwrap();
        let oracle = FleetSummary::from_records(7, 10, 1, records);
        assert_eq!(streamed.to_json(), oracle.to_json());
    }

    #[test]
    fn runs_averaging_is_applied() {
        let one = quick_fleet(1, 1);
        let (r1, _) = one.run().unwrap();
        let two = FleetOrchestrator::new(one.config().clone().with_runs(2));
        let (r2, _) = two.run().unwrap();
        assert_eq!(r2.runs, 2);
        // Averaged speedups differ from the single-run row (distinct
        // derived seeds), while staying in a plausible band.
        assert!(r2.detail[0].speedup.init > 1.0);
        assert!(
            r1.detail[0].seed == r2.detail[0].seed,
            "base seed is stable"
        );
    }

    #[test]
    fn chaos_fleet_is_deterministic_across_thread_counts() {
        let chaotic = |threads: usize| {
            FleetOrchestrator::new(
                quick_fleet(4, threads)
                    .config()
                    .clone()
                    .with_chaos(ChaosConfig::uniform(0.3)),
            )
        };
        let (seq, _) = chaotic(1).run().unwrap();
        let (par, _) = chaotic(4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
        assert!(seq.chaos.is_some(), "chaos summary present when enabled");
        assert!(seq.to_json().contains("\"chaos\""));
    }

    #[test]
    fn snapshot_pool_fleet_is_deterministic_across_thread_counts() {
        let pooled = |threads: usize| {
            FleetOrchestrator::new(
                quick_fleet(4, threads)
                    .config()
                    .clone()
                    .with_snapshot_pool(NodeSnapshotPool::new(Some(64 << 20), 2, true)),
            )
        };
        let (seq, _) = pooled(1).run().unwrap();
        let (par, _) = pooled(4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
        let snaps = seq.snapshots.expect("snapshot summary present with a pool");
        assert!(
            snaps.hits + snaps.misses > 0,
            "cold starts consulted the store"
        );
        assert!(seq.to_json().contains("\"snapshots\""));
        // Every detail row carries its own counters.
        assert!(seq.detail.iter().all(|a| a.snapshot.is_some()));
    }

    #[test]
    fn pool_free_fleet_reports_no_snapshot_counters() {
        let (plain, _) = quick_fleet(2, 1).run().unwrap();
        assert!(plain.snapshots.is_none());
        assert!(!plain.to_json().contains("\"snapshots\""));
    }

    #[test]
    fn zygote_fleet_is_deterministic_and_bumps_the_schema() {
        let forked = |threads: usize| {
            FleetOrchestrator::new(
                quick_fleet(4, threads)
                    .config()
                    .clone()
                    .with_zygote_pool(NodeZygotePool::default_geometry()),
            )
        };
        let (seq, _) = forked(1).run().unwrap();
        let (par, _) = forked(4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
        let zygotes = seq.zygotes.expect("zygote summary present with a pool");
        assert!(zygotes.forks > 0, "cold starts forked from the zygote");
        assert!(zygotes.forked_loads > 0, "resident modules were acquired");
        assert!(seq
            .to_json()
            .contains("\"schema\":\"slimstart-fleet-report/v4\""));
        // Every detail row carries its own counters.
        assert!(seq.detail.iter().all(|a| a.zygote.is_some()));
    }

    #[test]
    fn zygote_sharing_lowers_mean_cold_init() {
        let (plain, _) = quick_fleet(4, 1).run().unwrap();
        let forked = FleetOrchestrator::new(
            quick_fleet(4, 1)
                .config()
                .clone()
                .with_zygote_pool(NodeZygotePool::default_geometry()),
        );
        let (shared, _) = forked.run().unwrap();
        let plain_init: f64 = plain.detail.iter().map(|a| a.baseline_init_ms).sum();
        let shared_init: f64 = shared.detail.iter().map(|a| a.baseline_init_ms).sum();
        assert!(
            shared_init < plain_init,
            "forked cold starts must pay less init: {shared_init} vs {plain_init}"
        );
    }

    #[test]
    fn zygote_free_fleet_keeps_the_v3_report_bytes() {
        let (plain, _) = quick_fleet(2, 1).run().unwrap();
        assert!(plain.zygotes.is_none());
        assert!(!plain.to_json().contains("zygote"));
        assert!(plain
            .to_json()
            .contains("\"schema\":\"slimstart-fleet-report/v3\""));
    }

    #[test]
    fn combined_pools_share_the_node_budget_deterministically() {
        let both = |threads: usize| {
            FleetOrchestrator::new(
                quick_fleet(4, threads)
                    .config()
                    .clone()
                    .with_snapshot_pool(NodeSnapshotPool::new(Some(64 << 20), 2, true))
                    .with_zygote_pool(NodeZygotePool::default_geometry()),
            )
        };
        let (seq, _) = both(1).run().unwrap();
        let (par, _) = both(4).run().unwrap();
        assert_eq!(seq.to_json(), par.to_json());
        assert!(seq.snapshots.is_some() && seq.zygotes.is_some());
    }

    #[test]
    fn disabled_chaos_leaves_the_report_untouched() {
        let (plain, _) = quick_fleet(3, 2).run().unwrap();
        let zeroed = FleetOrchestrator::new(
            quick_fleet(3, 2)
                .config()
                .clone()
                .with_chaos(ChaosConfig::uniform(0.0)),
        );
        let (zero, _) = zeroed.run().unwrap();
        assert_eq!(plain.to_json(), zero.to_json());
        assert!(!plain.to_json().contains("chaos"));
    }

    #[test]
    fn seeds_are_pure_function_of_experiment_seed_and_index() {
        let (a, _) = quick_fleet(4, 3).run().unwrap();
        let (b, _) = quick_fleet(4, 1).run().unwrap();
        let seeds_a: Vec<u64> = a.detail.iter().map(|r| r.seed).collect();
        let seeds_b: Vec<u64> = b.detail.iter().map(|r| r.seed).collect();
        assert_eq!(seeds_a, seeds_b);
        // And they match a hand-rolled sequential split.
        let mut root = SimRng::seed_from(7);
        let expected: Vec<u64> = (0..4).map(|_| root.split_seed()).collect();
        assert_eq!(seeds_a, expected);
    }

    #[test]
    fn stall_hook_slows_the_run_but_not_the_report() {
        let (plain, _) = quick_fleet(3, 1).run().unwrap();
        let stalled =
            FleetOrchestrator::new(quick_fleet(3, 1).config().clone().with_stall_micros(200));
        let (report, stats) = stalled.run().unwrap();
        assert_eq!(plain.to_json(), report.to_json());
        assert!(stats.wall_clock >= Duration::from_micros(3 * 200));
    }

    #[test]
    fn run_stats_guard_degenerate_divisions() {
        let zero_apps = FleetRunStats::new(Duration::from_secs(1), 2, 0, 0);
        assert_eq!(zero_apps.apps_per_second, 0.0);
        let zero_clock = FleetRunStats::new(Duration::ZERO, 2, 10, 0);
        assert_eq!(zero_clock.apps_per_second, 0.0);
        assert!(zero_clock.apps_per_second.is_finite());
        let normal = FleetRunStats::new(Duration::from_secs(2), 2, 10, 64);
        assert!((normal.apps_per_second - 5.0).abs() < 1e-9);
        assert!(normal.to_string().contains("2 thread(s)"));
    }

    #[test]
    fn threads_are_clamped_to_spawned_count() {
        // 3 apps with chunk size 1 yield 3 chunks; asking for 64 threads
        // must report the 3 actually spawned.
        let wide = FleetOrchestrator::new(quick_fleet(3, 64).config().clone().with_chunk(1));
        let (_, stats) = wide.run().unwrap();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.apps, 3);
        assert!(stats.aggregate_peak_bytes > 0);
    }
}
