//! Node-level snapshot budgeting for fleet runs.
//!
//! PR 5 gave every app an unbounded, full-stream [`SnapshotStore`]; at
//! the ROADMAP's "millions of users" scale that models a node with
//! infinite memory. A [`NodeSnapshotPool`] instead models each node's
//! snapshot cache as a finite byte budget that the applications packed
//! onto that node must share, so large fleets have to choose which apps
//! stay snapshot-warm.
//!
//! ## Static fair-share sharding
//!
//! Apps are packed onto nodes by population index (`node = index /
//! node_size`), and a node's budget is split into equal per-app shards
//! up front. Each app then gets a *private* bounded store sized to its
//! shard ([`NodeSnapshotPool::store_for`]) rather than a handle to one
//! mutable node-wide cache. This is deliberate: the fleet's byte-identity
//! contract says `--threads 1` and `--threads 8` produce identical
//! reports, and a store whose eviction order depended on which worker
//! touched it first would break that *structurally*, not just
//! numerically. Fair-share shards keep the node budget honest — the sum
//! of shard budgets never exceeds the node budget — while keeping every
//! eviction decision a pure function of (population index, seed).
//!
//! The pool is a factory, not a registry: stores are created in
//! `run_app`, their counters are distilled into the app's
//! [`crate::report::AppSnapshotRecord`], and the store drops with the
//! app. Nothing snapshot-related is retained per app at 10k scale.

use std::sync::Arc;

use slimstart_pyrt::snapshot::SnapshotStore;

/// Default applications packed per modeled node.
pub const DEFAULT_NODE_SIZE: usize = 8;

/// Snapshot policy for a fleet run: how much node memory the snapshot
/// cache may use, how apps are packed onto nodes, and whether restores
/// replay the recorded working set lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSnapshotPool {
    /// Modeled per-node snapshot budget in bytes; `None` is unlimited.
    node_budget_bytes: Option<u64>,
    /// Applications packed per node (clamped to at least 1).
    node_size: usize,
    /// Whether restores replay only the recorded working set eagerly,
    /// faulting the rest in on first use (REAP-style).
    lazy_restore: bool,
}

impl Default for NodeSnapshotPool {
    fn default() -> Self {
        NodeSnapshotPool {
            node_budget_bytes: None,
            node_size: DEFAULT_NODE_SIZE,
            lazy_restore: true,
        }
    }
}

impl NodeSnapshotPool {
    /// Creates a pool with the given node budget (`None` = unlimited),
    /// node size, and restore mode.
    pub fn new(node_budget_bytes: Option<u64>, node_size: usize, lazy_restore: bool) -> Self {
        NodeSnapshotPool {
            node_budget_bytes,
            node_size: node_size.max(1),
            lazy_restore,
        }
    }

    /// Sets the per-node byte budget.
    #[must_use]
    pub fn with_node_budget(mut self, bytes: Option<u64>) -> Self {
        self.node_budget_bytes = bytes;
        self
    }

    /// Sets how many apps share a node.
    #[must_use]
    pub fn with_node_size(mut self, node_size: usize) -> Self {
        self.node_size = node_size.max(1);
        self
    }

    /// Sets the restore mode (`false` = PR 5 full-stream replay).
    #[must_use]
    pub fn with_lazy_restore(mut self, lazy: bool) -> Self {
        self.lazy_restore = lazy;
        self
    }

    /// The modeled per-node budget in bytes (`None` = unlimited).
    pub fn node_budget_bytes(&self) -> Option<u64> {
        self.node_budget_bytes
    }

    /// Applications packed per node.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Whether restores are working-set lazy.
    pub fn lazy_restore(&self) -> bool {
        self.lazy_restore
    }

    /// The node a population index lands on.
    pub fn node_of(&self, index: usize) -> usize {
        index / self.node_size
    }

    /// Nodes a fleet of `apps` applications occupies.
    pub fn nodes_for(&self, apps: usize) -> usize {
        apps.div_ceil(self.node_size)
    }

    /// One app's fair share of the node budget. Integer division floors,
    /// so `node_size * shard_budget <= node_budget` always holds — the
    /// modeled node can never be oversubscribed by rounding. The
    /// remainder bytes stranded by flooring go to the node's first
    /// shards (see [`shard_budget_for`](Self::shard_budget_for)); this
    /// accessor reports the floor every shard is guaranteed.
    pub fn shard_budget_bytes(&self) -> Option<u64> {
        self.node_budget_bytes.map(|b| b / self.node_size as u64)
    }

    /// The exact shard budget for one population index. Every shard gets
    /// the floor `node_budget / node_size`; the `node_budget % node_size`
    /// remainder bytes go one each to the node's first shards (by
    /// position on the node), so the shard budgets of a full node sum to
    /// exactly the node budget — no byte is stranded, and the node still
    /// can never be oversubscribed.
    pub fn shard_budget_for(&self, index: usize) -> Option<u64> {
        self.shard_budget_for_reserved(index, 0)
    }

    /// Like [`shard_budget_for`](Self::shard_budget_for), with
    /// `reserve_bytes` of the node budget set aside first (the zygote
    /// pool's resident bytes share the same modeled node memory). The
    /// reserve saturates: a zygote closure larger than the node budget
    /// leaves zero-byte snapshot shards rather than wrapping.
    pub fn shard_budget_for_reserved(&self, index: usize, reserve_bytes: u64) -> Option<u64> {
        self.node_budget_bytes.map(|b| {
            let budget = b.saturating_sub(reserve_bytes);
            let base = budget / self.node_size as u64;
            let remainder = budget % self.node_size as u64;
            let position = (index % self.node_size) as u64;
            base + u64::from(position < remainder)
        })
    }

    /// Builds the bounded store for one application. The population
    /// index selects the node and the shard position on it (which
    /// decides who receives the remainder bytes); eviction order stays a
    /// pure function of the app's own event stream because every shard
    /// is private.
    pub fn store_for(&self, index: usize) -> Arc<SnapshotStore> {
        self.store_for_reserved(index, 0)
    }

    /// Builds the bounded store for one application with part of the
    /// node budget reserved (zygote residency accounting).
    pub fn store_for_reserved(&self, index: usize, reserve_bytes: u64) -> Arc<SnapshotStore> {
        Arc::new(SnapshotStore::with_limits(
            self.shard_budget_for_reserved(index, reserve_bytes),
            self.lazy_restore,
        ))
    }
}

/// Parses a human byte-budget string: a plain integer is bytes, and a
/// `k`/`m`/`g` suffix (case-insensitive, optionally followed by `b` or
/// `ib`) scales by binary powers. `"0"` and `"unlimited"` mean no limit.
///
/// # Errors
///
/// Returns a description of the malformed input: empty strings, a bare
/// suffix with no digits, an unrecognized suffix, and values that
/// overflow `u64` (either in the digits themselves or after scaling)
/// each get a distinct message.
pub fn parse_budget(s: &str) -> Result<Option<u64>, String> {
    let raw = s.trim().to_ascii_lowercase();
    if raw.is_empty() {
        return Err("empty byte budget (pass e.g. '64m', '0' or 'unlimited')".to_string());
    }
    if raw == "unlimited" || raw == "none" {
        return Ok(None);
    }
    let (digits, scale) = match raw.find(|c: char| !c.is_ascii_digit()) {
        None => (raw.as_str(), 1u64),
        Some(pos) => {
            let (digits, suffix) = raw.split_at(pos);
            let scale = match suffix {
                "k" | "kb" | "kib" => 1u64 << 10,
                "m" | "mb" | "mib" => 1u64 << 20,
                "g" | "gb" | "gib" => 1u64 << 30,
                _ => return Err(format!("unrecognized byte suffix '{suffix}' in '{s}'")),
            };
            (digits, scale)
        }
    };
    if digits.is_empty() {
        return Err(format!(
            "byte budget '{s}' has a suffix but no digits (pass e.g. '64k')"
        ));
    }
    let n: u64 = digits.parse().map_err(|e: std::num::ParseIntError| {
        if *e.kind() == std::num::IntErrorKind::PosOverflow {
            format!("byte budget '{s}' overflows u64")
        } else {
            format!("invalid byte budget '{s}'")
        }
    })?;
    let bytes = n
        .checked_mul(scale)
        .ok_or_else(|| format!("byte budget '{s}' overflows u64"))?;
    Ok((bytes > 0).then_some(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_never_oversubscribes_the_node() {
        for budget in [1u64, 1000, 1 << 20, (1 << 30) + 7] {
            for node_size in [1usize, 3, 8, 13] {
                let pool = NodeSnapshotPool::new(Some(budget), node_size, true);
                let shard = pool.shard_budget_bytes().unwrap();
                assert!(shard * node_size as u64 <= budget);
                for index in 0..node_size * 2 {
                    let exact = pool.shard_budget_for(index).unwrap();
                    assert!(exact >= shard, "exact shard below the guaranteed floor");
                }
            }
        }
    }

    #[test]
    fn fair_share_remainder_reaches_the_first_shards_exactly() {
        for budget in [0u64, 1, 7, 1000, 1 << 20, (1 << 30) + 7] {
            for node_size in [1usize, 3, 8, 13] {
                let pool = NodeSnapshotPool::new(Some(budget), node_size, true);
                // The shard budgets of one full node sum to exactly the
                // node budget: flooring strands nothing.
                let total: u64 = (0..node_size)
                    .map(|i| pool.shard_budget_for(i).unwrap())
                    .sum();
                assert_eq!(
                    total, budget,
                    "node budget {budget} split over {node_size} shards lost bytes"
                );
                // Shard position, not absolute index, decides who gets
                // the remainder — every node splits identically.
                for i in 0..node_size {
                    assert_eq!(
                        pool.shard_budget_for(i),
                        pool.shard_budget_for(i + node_size),
                    );
                }
            }
        }
    }

    #[test]
    fn reserved_bytes_shrink_the_shared_node_budget() {
        let pool = NodeSnapshotPool::new(Some(1000), 4, true);
        let total: u64 = (0..4)
            .map(|i| pool.shard_budget_for_reserved(i, 300).unwrap())
            .sum();
        assert_eq!(total, 700);
        // A reserve beyond the whole budget saturates to zero shards.
        assert_eq!(pool.shard_budget_for_reserved(0, 5000), Some(0));
        // Unlimited nodes ignore the reserve.
        let unlimited = NodeSnapshotPool::new(None, 4, true);
        assert_eq!(unlimited.shard_budget_for_reserved(0, 300), None);
    }

    #[test]
    fn node_packing_is_by_index() {
        let pool = NodeSnapshotPool::new(Some(1 << 20), 4, true);
        assert_eq!(pool.node_of(0), 0);
        assert_eq!(pool.node_of(3), 0);
        assert_eq!(pool.node_of(4), 1);
        assert_eq!(pool.nodes_for(0), 0);
        assert_eq!(pool.nodes_for(4), 1);
        assert_eq!(pool.nodes_for(5), 2);
    }

    #[test]
    fn stores_inherit_shard_budget_and_mode() {
        let pool = NodeSnapshotPool::new(Some(8192), 4, true);
        let store = pool.store_for(2);
        assert_eq!(store.budget_bytes(), Some(2048));
        assert!(store.lazy_restore());

        let eager = NodeSnapshotPool::new(None, 4, false);
        let store = eager.store_for(0);
        assert_eq!(store.budget_bytes(), None);
        assert!(!store.lazy_restore());
    }

    #[test]
    fn node_size_is_clamped_to_one() {
        let pool = NodeSnapshotPool::new(Some(100), 0, true);
        assert_eq!(pool.node_size(), 1);
        assert_eq!(pool.shard_budget_bytes(), Some(100));
    }

    #[test]
    fn budget_parsing_accepts_suffixes_and_sentinels() {
        assert_eq!(parse_budget("4096"), Ok(Some(4096)));
        assert_eq!(parse_budget("64k"), Ok(Some(64 << 10)));
        assert_eq!(parse_budget("8M"), Ok(Some(8 << 20)));
        assert_eq!(parse_budget("2GiB"), Ok(Some(2 << 30)));
        assert_eq!(parse_budget("512kb"), Ok(Some(512 << 10)));
        assert_eq!(parse_budget("0"), Ok(None));
        assert_eq!(parse_budget("16g"), Ok(Some(16 << 30)));
        assert_eq!(parse_budget("unlimited"), Ok(None));
        assert!(parse_budget("12q").is_err());
        assert!(parse_budget("999999999999g").is_err());
    }

    #[test]
    fn budget_parsing_rejects_empty_overflow_and_bare_suffix_with_clear_errors() {
        let empty = parse_budget("").unwrap_err();
        assert!(empty.contains("empty"), "got: {empty}");
        let blank = parse_budget("   ").unwrap_err();
        assert!(blank.contains("empty"), "got: {blank}");

        // u64::MAX + 1: the digits themselves overflow, distinct from a
        // generically malformed number.
        let overflow = parse_budget("18446744073709551616").unwrap_err();
        assert!(overflow.contains("overflows u64"), "got: {overflow}");
        // Overflow introduced by the scale factor reads the same way.
        let scaled = parse_budget("999999999999g").unwrap_err();
        assert!(scaled.contains("overflows u64"), "got: {scaled}");

        // A bare suffix has no digits to scale.
        let bare = parse_budget("k").unwrap_err();
        assert!(bare.contains("no digits"), "got: {bare}");

        // The exact boundary still parses.
        assert_eq!(
            parse_budget("18446744073709551615"),
            Ok(Some(u64::MAX)),
            "u64::MAX is a valid budget"
        );
    }
}
