//! Node-level snapshot budgeting for fleet runs.
//!
//! PR 5 gave every app an unbounded, full-stream [`SnapshotStore`]; at
//! the ROADMAP's "millions of users" scale that models a node with
//! infinite memory. A [`NodeSnapshotPool`] instead models each node's
//! snapshot cache as a finite byte budget that the applications packed
//! onto that node must share, so large fleets have to choose which apps
//! stay snapshot-warm.
//!
//! ## Static fair-share sharding
//!
//! Apps are packed onto nodes by population index (`node = index /
//! node_size`), and a node's budget is split into equal per-app shards
//! up front. Each app then gets a *private* bounded store sized to its
//! shard ([`NodeSnapshotPool::store_for`]) rather than a handle to one
//! mutable node-wide cache. This is deliberate: the fleet's byte-identity
//! contract says `--threads 1` and `--threads 8` produce identical
//! reports, and a store whose eviction order depended on which worker
//! touched it first would break that *structurally*, not just
//! numerically. Fair-share shards keep the node budget honest — the sum
//! of shard budgets never exceeds the node budget — while keeping every
//! eviction decision a pure function of (population index, seed).
//!
//! The pool is a factory, not a registry: stores are created in
//! `run_app`, their counters are distilled into the app's
//! [`crate::report::AppSnapshotRecord`], and the store drops with the
//! app. Nothing snapshot-related is retained per app at 10k scale.

use std::sync::Arc;

use slimstart_pyrt::snapshot::SnapshotStore;

/// Default applications packed per modeled node.
pub const DEFAULT_NODE_SIZE: usize = 8;

/// Snapshot policy for a fleet run: how much node memory the snapshot
/// cache may use, how apps are packed onto nodes, and whether restores
/// replay the recorded working set lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSnapshotPool {
    /// Modeled per-node snapshot budget in bytes; `None` is unlimited.
    node_budget_bytes: Option<u64>,
    /// Applications packed per node (clamped to at least 1).
    node_size: usize,
    /// Whether restores replay only the recorded working set eagerly,
    /// faulting the rest in on first use (REAP-style).
    lazy_restore: bool,
}

impl Default for NodeSnapshotPool {
    fn default() -> Self {
        NodeSnapshotPool {
            node_budget_bytes: None,
            node_size: DEFAULT_NODE_SIZE,
            lazy_restore: true,
        }
    }
}

impl NodeSnapshotPool {
    /// Creates a pool with the given node budget (`None` = unlimited),
    /// node size, and restore mode.
    pub fn new(node_budget_bytes: Option<u64>, node_size: usize, lazy_restore: bool) -> Self {
        NodeSnapshotPool {
            node_budget_bytes,
            node_size: node_size.max(1),
            lazy_restore,
        }
    }

    /// Sets the per-node byte budget.
    #[must_use]
    pub fn with_node_budget(mut self, bytes: Option<u64>) -> Self {
        self.node_budget_bytes = bytes;
        self
    }

    /// Sets how many apps share a node.
    #[must_use]
    pub fn with_node_size(mut self, node_size: usize) -> Self {
        self.node_size = node_size.max(1);
        self
    }

    /// Sets the restore mode (`false` = PR 5 full-stream replay).
    #[must_use]
    pub fn with_lazy_restore(mut self, lazy: bool) -> Self {
        self.lazy_restore = lazy;
        self
    }

    /// The modeled per-node budget in bytes (`None` = unlimited).
    pub fn node_budget_bytes(&self) -> Option<u64> {
        self.node_budget_bytes
    }

    /// Applications packed per node.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Whether restores are working-set lazy.
    pub fn lazy_restore(&self) -> bool {
        self.lazy_restore
    }

    /// The node a population index lands on.
    pub fn node_of(&self, index: usize) -> usize {
        index / self.node_size
    }

    /// Nodes a fleet of `apps` applications occupies.
    pub fn nodes_for(&self, apps: usize) -> usize {
        apps.div_ceil(self.node_size)
    }

    /// One app's fair share of the node budget. Integer division floors,
    /// so `node_size * shard_budget <= node_budget` always holds — the
    /// modeled node can never be oversubscribed by rounding.
    pub fn shard_budget_bytes(&self) -> Option<u64> {
        self.node_budget_bytes.map(|b| b / self.node_size as u64)
    }

    /// Builds the bounded store for one application. The population
    /// index only selects the node for accounting; every shard on a node
    /// is interchangeable, which is what keeps eviction order a pure
    /// function of the app's own event stream.
    pub fn store_for(&self, _index: usize) -> Arc<SnapshotStore> {
        Arc::new(SnapshotStore::with_limits(
            self.shard_budget_bytes(),
            self.lazy_restore,
        ))
    }
}

/// Parses a human byte-budget string: a plain integer is bytes, and a
/// `k`/`m`/`g` suffix (case-insensitive, optionally followed by `b` or
/// `ib`) scales by binary powers. `"0"` and `"unlimited"` mean no limit.
///
/// # Errors
///
/// Returns a description of the malformed input.
pub fn parse_budget(s: &str) -> Result<Option<u64>, String> {
    let raw = s.trim().to_ascii_lowercase();
    if raw == "unlimited" || raw == "none" {
        return Ok(None);
    }
    let (digits, scale) = match raw.find(|c: char| !c.is_ascii_digit()) {
        None => (raw.as_str(), 1u64),
        Some(pos) => {
            let (digits, suffix) = raw.split_at(pos);
            let scale = match suffix {
                "k" | "kb" | "kib" => 1u64 << 10,
                "m" | "mb" | "mib" => 1u64 << 20,
                "g" | "gb" | "gib" => 1u64 << 30,
                _ => return Err(format!("unrecognized byte suffix '{suffix}' in '{s}'")),
            };
            (digits, scale)
        }
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid byte budget '{s}'"))?;
    let bytes = n
        .checked_mul(scale)
        .ok_or_else(|| format!("byte budget '{s}' overflows u64"))?;
    Ok((bytes > 0).then_some(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_never_oversubscribes_the_node() {
        for budget in [1u64, 1000, 1 << 20, (1 << 30) + 7] {
            for node_size in [1usize, 3, 8, 13] {
                let pool = NodeSnapshotPool::new(Some(budget), node_size, true);
                let shard = pool.shard_budget_bytes().unwrap();
                assert!(shard * node_size as u64 <= budget);
            }
        }
    }

    #[test]
    fn node_packing_is_by_index() {
        let pool = NodeSnapshotPool::new(Some(1 << 20), 4, true);
        assert_eq!(pool.node_of(0), 0);
        assert_eq!(pool.node_of(3), 0);
        assert_eq!(pool.node_of(4), 1);
        assert_eq!(pool.nodes_for(0), 0);
        assert_eq!(pool.nodes_for(4), 1);
        assert_eq!(pool.nodes_for(5), 2);
    }

    #[test]
    fn stores_inherit_shard_budget_and_mode() {
        let pool = NodeSnapshotPool::new(Some(8192), 4, true);
        let store = pool.store_for(2);
        assert_eq!(store.budget_bytes(), Some(2048));
        assert!(store.lazy_restore());

        let eager = NodeSnapshotPool::new(None, 4, false);
        let store = eager.store_for(0);
        assert_eq!(store.budget_bytes(), None);
        assert!(!store.lazy_restore());
    }

    #[test]
    fn node_size_is_clamped_to_one() {
        let pool = NodeSnapshotPool::new(Some(100), 0, true);
        assert_eq!(pool.node_size(), 1);
        assert_eq!(pool.shard_budget_bytes(), Some(100));
    }

    #[test]
    fn budget_parsing_accepts_suffixes_and_sentinels() {
        assert_eq!(parse_budget("4096"), Ok(Some(4096)));
        assert_eq!(parse_budget("64k"), Ok(Some(64 << 10)));
        assert_eq!(parse_budget("8M"), Ok(Some(8 << 20)));
        assert_eq!(parse_budget("2GiB"), Ok(Some(2 << 30)));
        assert_eq!(parse_budget("512kb"), Ok(Some(512 << 10)));
        assert_eq!(parse_budget("0"), Ok(None));
        assert_eq!(parse_budget("unlimited"), Ok(None));
        assert!(parse_budget("12q").is_err());
        assert!(parse_budget("").is_err());
        assert!(parse_budget("999999999999g").is_err());
    }
}
