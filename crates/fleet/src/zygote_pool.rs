//! Per-node zygote pools: planning live dependency sharing for a fleet.
//!
//! [`NodeZygotePool`] is the fleet-level companion of
//! [`slimstart_pyrt::zygote::ZygoteImage`]: apps share their node's
//! zygotes exactly as they share its snapshot budget
//! ([`crate::snapshot_pool::NodeSnapshotPool`] — same `node_size`
//! geometry, `node = index / node_size`). Planning happens once per
//! fleet run, **sequentially and up front** like seed splitting, so the
//! plan is a pure function of (pool config, population) and worker
//! scheduling can never move a byte of the report:
//!
//! 1. Each node's member apps are partitioned round-robin across the
//!    node's `zygotes_per_node` pre-warmed processes.
//! 2. Each zygote ranks the module names its member apps define by
//!    **load cost × hit frequency** — the summed nominal init cost the
//!    name would charge across those apps (an app that loads a library
//!    twice as often as another also builds it into twice as many
//!    containers, which is what the sum models) — hottest first,
//!    name-ascending on ties.
//! 3. The zygote holds a prefix of that ranking resident: names stay
//!    eligible while acquiring them at the fork cost is strictly
//!    cheaper than every member's own load (`min init cost > fork
//!    cost`) and while the optional per-zygote byte budget lasts.
//! 4. Every member app then forks from its **best-matching** zygote of
//!    the node: the one whose resident set overlaps the app's own
//!    modules with the highest summed init cost (lowest zygote index on
//!    ties) — an app benefits from a neighbor's zygote when that image
//!    covers more of its closure than its own partition's does.
//!
//! The plan also settles the node memory account: the bytes every
//! zygote on a node pins resident are reported per app as
//! `node_reserve_bytes`, which the orchestrator subtracts from the
//! node's snapshot budget before fair-sharing it
//! ([`crate::snapshot_pool::NodeSnapshotPool::store_for_reserved`]) —
//! zygotes and snapshot caches spend the same modeled RAM.

use std::collections::BTreeMap;
use std::sync::Arc;

use slimstart_appmodel::Application;
use slimstart_pyrt::zygote::DEFAULT_FORK_COST;
use slimstart_simcore::time::SimDuration;

use crate::snapshot_pool::DEFAULT_NODE_SIZE;

/// Configuration of the per-node zygote pools (the `--zygotes` /
/// `--fork-cost-us` CLI surface).
#[derive(Debug, Clone)]
pub struct NodeZygotePool {
    zygotes_per_node: usize,
    node_size: usize,
    fork_cost: SimDuration,
    resident_budget_bytes: Option<u64>,
}

impl NodeZygotePool {
    /// Creates a pool keeping `zygotes_per_node` pre-warmed processes on
    /// every node of `node_size` apps, acquiring resident modules at
    /// `fork_cost`.
    ///
    /// # Panics
    ///
    /// Panics if `zygotes_per_node` or `node_size` is zero.
    pub fn new(zygotes_per_node: usize, node_size: usize, fork_cost: SimDuration) -> Self {
        assert!(zygotes_per_node > 0, "a zygote pool needs >= 1 zygote");
        assert!(node_size > 0, "node size must be >= 1");
        NodeZygotePool {
            zygotes_per_node,
            node_size,
            fork_cost,
            resident_budget_bytes: None,
        }
    }

    /// A pool with the default geometry: one zygote per
    /// [`DEFAULT_NODE_SIZE`]-app node at [`DEFAULT_FORK_COST`].
    pub fn default_geometry() -> Self {
        NodeZygotePool::new(1, DEFAULT_NODE_SIZE, DEFAULT_FORK_COST)
    }

    /// Returns a copy capping each zygote's resident bytes (`None` holds
    /// the full eligible closure).
    #[must_use]
    pub fn with_resident_budget(mut self, budget_bytes: Option<u64>) -> Self {
        self.resident_budget_bytes = budget_bytes;
        self
    }

    /// Zygotes kept per node.
    pub fn zygotes_per_node(&self) -> usize {
        self.zygotes_per_node
    }

    /// Apps per simulated node.
    pub fn node_size(&self) -> usize {
        self.node_size
    }

    /// Flat nominal cost of acquiring one resident module at fork.
    pub fn fork_cost(&self) -> SimDuration {
        self.fork_cost
    }

    /// Plans the fleet's zygote images from the built population.
    ///
    /// `apps` pairs each population index with its built application
    /// (ascending index order is not required; grouping sorts by node).
    /// Runs in O(population × modules) with only deterministic ordering
    /// (BTreeMaps, index order, name-ascending ties).
    pub fn plan(&self, apps: &[(usize, Application)]) -> ZygotePlan {
        let mut by_node: BTreeMap<usize, Vec<&(usize, Application)>> = BTreeMap::new();
        for entry in apps {
            by_node
                .entry(entry.0 / self.node_size)
                .or_default()
                .push(entry);
        }
        let mut specs = BTreeMap::new();
        for members in by_node.values() {
            let zygotes = self.plan_node(members);
            let node_reserve_bytes: u64 = zygotes.iter().map(|z| z.resident_bytes).sum();
            for (index, app) in members.iter().map(|m| (&m.0, &m.1)) {
                let best = Self::best_match(app, &zygotes);
                specs.insert(
                    *index,
                    AppZygoteSpec {
                        ranked: Arc::clone(&zygotes[best].ranked),
                        resident_prefix: zygotes[best].resident_prefix,
                        node_reserve_bytes,
                    },
                );
            }
        }
        ZygotePlan {
            fork_cost: self.fork_cost,
            specs,
        }
    }

    /// Builds one node's zygotes from its members (round-robin
    /// partition by ascending member position).
    fn plan_node(&self, members: &[&(usize, Application)]) -> Vec<PlannedZygote> {
        (0..self.zygotes_per_node)
            .map(|j| {
                let partition = members
                    .iter()
                    .enumerate()
                    .filter(|(position, _)| position % self.zygotes_per_node == j)
                    .map(|(_, m)| &m.1);
                self.build_zygote(partition)
            })
            .collect()
    }

    /// Ranks one zygote's module names by summed init cost across its
    /// member apps and cuts the resident prefix.
    fn build_zygote<'a>(&self, members: impl Iterator<Item = &'a Application>) -> PlannedZygote {
        #[derive(Default)]
        struct NameScore {
            /// Σ init cost (µs) across member apps — cost × frequency.
            score: u128,
            /// Cheapest member-app load of this name: residency is only
            /// worth it when even that beats the fork cost.
            min_cost_us: u64,
            /// Largest member-app footprint — the bytes the zygote pins.
            max_bytes: u64,
        }
        let mut scores: BTreeMap<&str, NameScore> = BTreeMap::new();
        for app in members {
            for module in app.modules() {
                let cost_us = module.init_cost().as_micros();
                let entry = scores.entry(module.name()).or_insert_with(|| NameScore {
                    min_cost_us: u64::MAX,
                    ..NameScore::default()
                });
                entry.score += u128::from(cost_us);
                entry.min_cost_us = entry.min_cost_us.min(cost_us);
                entry.max_bytes = entry.max_bytes.max(module.mem_kb() * 1024);
            }
        }
        let mut ranked: Vec<(&str, NameScore)> =
            scores.into_iter().filter(|(_, s)| s.score > 0).collect();
        ranked.sort_by(|a, b| b.1.score.cmp(&a.1.score).then(a.0.cmp(b.0)));
        let fork_us = self.fork_cost.as_micros();
        let mut resident_prefix = 0usize;
        let mut resident_bytes = 0u64;
        for (_, s) in &ranked {
            if s.min_cost_us <= fork_us {
                break; // acquiring must strictly beat every member's load
            }
            if let Some(budget) = self.resident_budget_bytes {
                if resident_bytes + s.max_bytes > budget {
                    break;
                }
            }
            resident_bytes += s.max_bytes;
            resident_prefix += 1;
        }
        PlannedZygote {
            ranked: ranked
                .into_iter()
                .map(|(name, _)| name.to_string())
                .collect(),
            resident_prefix,
            resident_bytes,
        }
    }

    /// The node zygote covering the most of `app`'s closure: highest
    /// summed init cost over resident names the app defines, lowest
    /// zygote index on ties (including the no-overlap case).
    fn best_match(app: &Application, zygotes: &[PlannedZygote]) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u128;
        for (j, zygote) in zygotes.iter().enumerate() {
            let mut score = 0u128;
            for name in &zygote.ranked[..zygote.resident_prefix] {
                if let Some(module) = app.module_by_name(name) {
                    score += u128::from(app.module(module).init_cost().as_micros());
                }
            }
            if score > best_score {
                best_score = score;
                best = j;
            }
        }
        best
    }
}

/// One planned node zygote: the hotness ranking and its resident prefix.
struct PlannedZygote {
    ranked: Arc<[String]>,
    resident_prefix: usize,
    resident_bytes: u64,
}

/// The fleet's planned zygote assignment: one spec per population index.
#[derive(Debug, Clone)]
pub struct ZygotePlan {
    fork_cost: SimDuration,
    specs: BTreeMap<usize, AppZygoteSpec>,
}

impl ZygotePlan {
    /// The flat fork acquisition cost every image charges.
    pub fn fork_cost(&self) -> SimDuration {
        self.fork_cost
    }

    /// The spec planned for a population index, if that app was planned.
    pub fn spec(&self, index: usize) -> Option<&AppZygoteSpec> {
        self.specs.get(&index)
    }
}

/// One app's zygote assignment: the chosen image's prefetch-ordered
/// ranking, how much of it is resident, and the node-wide bytes all
/// zygotes of its node pin (shared with the snapshot budget).
#[derive(Debug, Clone)]
pub struct AppZygoteSpec {
    /// The chosen zygote's hotness ranking, hottest first — feeds
    /// [`slimstart_pyrt::zygote::ZygoteImage::for_app`] directly.
    pub ranked: Arc<[String]>,
    /// How many leading ranked names the zygote holds resident.
    pub resident_prefix: usize,
    /// Total resident bytes of every zygote on this app's node.
    pub node_reserve_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// One app with a private handler plus the given shared library
    /// modules (name, init ms, KiB).
    fn app(name: &str, libs: &[(&str, u64, u64)]) -> Application {
        let mut b = AppBuilder::new(name);
        let lib = b.add_library("lib");
        b.add_app_module("handler", ms(1), 64);
        for &(module, cost, kb) in libs {
            b.add_library_module(module, ms(cost), kb, false, lib);
        }
        let m = b.add_app_module("main", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        b.add_handler("h", f);
        b.finish().unwrap()
    }

    #[test]
    fn ranking_orders_by_summed_cost_with_name_ties() {
        let pool = NodeZygotePool::new(1, 4, SimDuration::from_micros(100));
        // "lib.hot" scores 30+30 ms across two apps, beating "lib.big"'s
        // one-app 40 ms; "lib.a"/"lib.b" tie at 5 ms and order by name.
        let apps = vec![
            (
                0,
                app(
                    "a",
                    &[("lib", 2, 10), ("lib.hot", 30, 100), ("lib.a", 5, 10)],
                ),
            ),
            (
                1,
                app(
                    "b",
                    &[("lib", 2, 10), ("lib.hot", 30, 100), ("lib.b", 5, 10)],
                ),
            ),
            (2, app("c", &[("lib", 2, 10), ("lib.big", 40, 100)])),
        ];
        let plan = pool.plan(&apps);
        let spec = plan.spec(0).unwrap();
        // handler appears in all three (1 ms × 3 = 3 ms, above lib.a/b? no:
        // 3 ms < 5 ms); ranking: lib.hot (60), lib.big (40), lib (6),
        // lib.a (5), lib.b (5), handler (3).
        let ranked: Vec<&str> = spec.ranked.iter().map(String::as_str).collect();
        assert_eq!(
            ranked,
            vec!["lib.hot", "lib.big", "lib", "lib.a", "lib.b", "handler"]
        );
        // Everything costs > 100 µs, so the whole ranking is resident.
        assert_eq!(spec.resident_prefix, 6);
        // All three apps share the single node zygote and its reserve.
        for i in 0..3 {
            assert_eq!(
                plan.spec(i).unwrap().node_reserve_bytes,
                spec.node_reserve_bytes
            );
        }
        // max bytes per name: lib.hot 100, lib.big 100, lib 10, lib.a 10,
        // lib.b 10, handler 64 KiB.
        assert_eq!(
            spec.node_reserve_bytes,
            (100 + 100 + 10 + 10 + 10 + 64) * 1024
        );
        assert_eq!(plan.fork_cost(), SimDuration::from_micros(100));
    }

    #[test]
    fn residency_stops_at_cheap_modules_and_byte_budget() {
        // Fork cost 2 ms: "lib" (2 ms) is not strictly cheaper to load
        // than to fork, so residency stops there even though the ranking
        // continues past it.
        let pool = NodeZygotePool::new(1, 2, ms(2));
        let apps = vec![(0, app("a", &[("lib", 2, 10), ("lib.hot", 30, 100)]))];
        let plan = pool.plan(&apps);
        let spec = plan.spec(0).unwrap();
        let ranked: Vec<&str> = spec.ranked.iter().map(String::as_str).collect();
        assert_eq!(ranked, vec!["lib.hot", "lib", "handler"]);
        assert_eq!(spec.resident_prefix, 1, "lib's 2 ms load == fork cost");
        assert_eq!(spec.node_reserve_bytes, 100 * 1024);

        // A byte budget truncates the prefix the same way.
        let tight = NodeZygotePool::new(1, 2, SimDuration::from_micros(100))
            .with_resident_budget(Some(100 * 1024));
        let plan = tight.plan(&apps);
        let spec = plan.spec(0).unwrap();
        assert_eq!(spec.resident_prefix, 1, "only lib.hot fits 100 KiB");
        assert_eq!(spec.node_reserve_bytes, 100 * 1024);
    }

    #[test]
    fn apps_fork_from_the_best_matching_node_zygote() {
        // Two zygotes on one 4-app node; members partition round-robin:
        // zygote 0 gets apps 0 and 2 (numpy-shaped), zygote 1 gets apps
        // 1 and 3 (pandas-shaped). App 4 lands on the next node.
        let numpy = &[("lib", 2, 10), ("lib.numpy", 30, 100)][..];
        let pandas = &[("lib", 2, 10), ("lib.pandas", 50, 200)][..];
        let apps = vec![
            (0, app("a", numpy)),
            (1, app("b", pandas)),
            (2, app("c", numpy)),
            (3, app("d", pandas)),
            (4, app("e", numpy)),
        ];
        let pool = NodeZygotePool::new(2, 4, SimDuration::from_micros(100));
        let plan = pool.plan(&apps);
        for i in [0, 2] {
            assert!(
                plan.spec(i)
                    .unwrap()
                    .ranked
                    .iter()
                    .any(|n| n.as_str() == "lib.numpy"),
                "app {i} forks the numpy zygote"
            );
        }
        for i in [1, 3] {
            assert!(
                plan.spec(i)
                    .unwrap()
                    .ranked
                    .iter()
                    .any(|n| n.as_str() == "lib.pandas"),
                "app {i} forks the pandas zygote"
            );
        }
        // Node 0's reserve counts both zygotes; node 1 (app 4 alone, two
        // zygotes but one is empty) reserves only its members' modules.
        let node0 = plan.spec(0).unwrap().node_reserve_bytes;
        let node1 = plan.spec(4).unwrap().node_reserve_bytes;
        assert!(node0 > node1);
        assert_eq!(node1, (100 + 10 + 64) * 1024);
        // A pandas app matched against the numpy zygote would score lower:
        // check the chosen image actually holds the app's own hot library.
        let spec3 = plan.spec(3).unwrap();
        let resident: Vec<&str> = spec3.ranked[..spec3.resident_prefix]
            .iter()
            .map(String::as_str)
            .collect();
        assert!(resident.contains(&"lib.pandas"));
    }

    #[test]
    fn planning_is_deterministic() {
        let apps: Vec<(usize, Application)> = (0..6)
            .map(|i| {
                (
                    i,
                    app(&format!("app{i}"), &[("lib", 2, 10), ("lib.hot", 30, 100)]),
                )
            })
            .collect();
        let pool = NodeZygotePool::new(2, 3, SimDuration::from_micros(100));
        let a = pool.plan(&apps);
        let b = pool.plan(&apps);
        for i in 0..6 {
            let (sa, sb) = (a.spec(i).unwrap(), b.spec(i).unwrap());
            assert_eq!(sa.ranked, sb.ranked);
            assert_eq!(sa.resident_prefix, sb.resident_prefix);
            assert_eq!(sa.node_reserve_bytes, sb.node_reserve_bytes);
        }
    }
}
