//! # slimstart-fleet
//!
//! The parallel fleet orchestrator: runs the SLIMSTART pipeline over a
//! population of N applications across a worker pool, producing an
//! aggregated [`FleetReport`].
//!
//! The paper's CI/CD methodology (§III Fig. 4, §V-b) evaluates one
//! application at a time; the ROADMAP north star is a production-scale
//! system serving *fleets* of functions, and FaaSLight likewise evaluates
//! across hundreds of real applications. This crate provides that scale
//! without giving up the repo's determinism discipline:
//!
//! * **Deterministic fan-out.** Every per-app seed is split from the one
//!   experiment seed *sequentially, up front* (see
//!   [`orchestrator::FleetOrchestrator`]), before any worker starts. Work
//!   distribution only decides *when* an app runs, never *with which
//!   randomness*, and results land in index-addressed slots — so the
//!   serialized [`FleetReport`] is byte-identical for `--threads 1` and
//!   `--threads 8`.
//! * **Aggregation.** Per-app speedups, fleet-wide percentiles via
//!   [`slimstart_simcore::stats`], an analyzer-findings rollup, and
//!   wall-clock throughput (reported separately from the deterministic
//!   JSON, since wall-clock is inherently nondeterministic).

pub mod orchestrator;
pub mod report;

pub use orchestrator::{FleetConfig, FleetError, FleetOrchestrator, FleetRunStats};
pub use report::{AppChaosRecord, AppRecord, FleetChaosSummary, FleetReport, SpeedupDistribution};
