//! # slimstart-fleet
//!
//! The parallel fleet orchestrator: runs the SLIMSTART pipeline over a
//! population of N applications across a worker pool, producing an
//! aggregated [`FleetReport`].
//!
//! The paper's CI/CD methodology (§III Fig. 4, §V-b) evaluates one
//! application at a time; the ROADMAP north star is a production-scale
//! system serving *fleets* of functions, and FaaSLight likewise evaluates
//! across hundreds of real applications. This crate provides that scale
//! without giving up the repo's determinism discipline:
//!
//! * **Deterministic fan-out.** Every per-app seed is split from the one
//!   experiment seed *sequentially, up front* (see
//!   [`orchestrator::FleetOrchestrator`]), before any worker starts. The
//!   work-stealing pool (chunked queue over the vendored crossbeam
//!   deques) only decides *when* an app runs, never *with which
//!   randomness* — so the serialized [`FleetReport`] is byte-identical
//!   for `--threads 1` and `--threads 8`.
//! * **Streaming aggregation.** Each finished app folds into a
//!   constant-memory [`report::FleetAggregator`] (fixed-bin histograms,
//!   fixed-point sums, a capped detail window); chunk partials merge in
//!   index order, so 10k-app fleets never retain a per-app record
//!   vector. Wall-clock throughput is reported separately from the
//!   deterministic JSON, since wall-clock is inherently nondeterministic.

pub mod orchestrator;
pub mod report;
pub mod snapshot_pool;
pub mod zygote_pool;

pub use orchestrator::{FleetConfig, FleetError, FleetOrchestrator, FleetRunStats, StallHook};
pub use report::{
    AppChaosRecord, AppRecord, AppSnapshotRecord, AppZygoteRecord, FixedHistogram, FleetAggregator,
    FleetChaosSummary, FleetReport, FleetSnapshotSummary, FleetSummary, FleetZygoteSummary,
    SpeedupDistribution,
};
pub use snapshot_pool::{parse_budget, NodeSnapshotPool, DEFAULT_NODE_SIZE};
pub use zygote_pool::{AppZygoteSpec, NodeZygotePool, ZygotePlan};
