//! The aggregated fleet report and its streaming builder.
//!
//! Everything in a [`FleetReport`] is a deterministic function of the
//! fleet configuration (population, experiment seed, cold starts, runs).
//! Two construction paths produce byte-identical JSON:
//!
//! * **Streaming** ([`FleetAggregator`]) — the orchestrator's path. Each
//!   finished application folds into constant-memory summary state
//!   (counts, integer-scaled sums, fixed-bin histograms, a capped
//!   per-app detail window); per-worker partials merge **in population
//!   index order**. Nothing retains a per-app vector at 10k scale.
//! * **Retained** ([`FleetSummary::from_records`]) — the differential
//!   oracle: collect every [`AppRecord`], aggregate in one pass. Only
//!   tests and small interactive runs should pay its memory bill.
//!
//! Byte-identity across thread counts (and between the two paths) rests
//! on two choices, both versioned in the JSON schema
//! ([`REPORT_SCHEMA`]):
//!
//! 1. **Integer-scaled means.** Mean accumulation uses fixed-point
//!    `i128` sums (`round(v * 2^`[`HIST_SCALE_BITS`]`)`), which are
//!    associative — unlike `f64` addition — so chunked partial merges
//!    and a sequential fold produce identical bits no matter how the
//!    population was partitioned.
//! 2. **Fixed-bin histograms.** Quantiles come from deterministic
//!    log2-spaced bins ([`FixedHistogram`]) instead of exact retained
//!    samples: bin counts are associative, so the same guarantee holds.
//!
//! Wall-clock timing deliberately lives in [`crate::FleetRunStats`],
//! *outside* this report, so serialized output is byte-identical
//! regardless of worker-pool size.

use std::fmt::Write as _;

use slimstart_platform::metrics::Speedup;

/// Version tag leading the serialized report. Bump whenever the summary
/// layout, histogram geometry, or scaling constants change.
///
/// v3 added the optional snapshot-cache counters (per-app `snapshot`
/// rows and the fleet-wide `snapshots` summary), present only when a
/// fleet runs with a [`crate::NodeSnapshotPool`].
pub const REPORT_SCHEMA: &str = "slimstart-fleet-report/v3";

/// Schema tag emitted when the fleet ran with a
/// [`crate::NodeZygotePool`]: v4 adds the per-app `zygote` rows and the
/// fleet-wide `zygotes` summary. Zygote-free fleets keep serializing as
/// [`REPORT_SCHEMA`], byte-identical to pre-zygote builds.
pub const REPORT_SCHEMA_ZYGOTE: &str = "slimstart-fleet-report/v4";

/// Per-app rows retained in the report's detail window. Fleets at or
/// below this size keep every row; larger fleets keep the first
/// `DETAIL_ROWS` (by population index) and set `detail_truncated` — the
/// report stays constant-memory at any scale.
pub const DETAIL_ROWS: usize = 32;

/// Histogram bins per speedup dimension.
pub const HIST_BINS: usize = 256;

/// log2 of the lowest bin edge: bin 0 starts at 2^-3 = 0.125x.
pub const HIST_LOG2_LO: f64 = -3.0;

/// log2 width of each bin (2^0.0625 ≈ 4.4 % relative resolution); 256
/// bins cover [0.125x, 8192x). Out-of-range values clamp to the edge
/// bins.
pub const HIST_LOG2_WIDTH: f64 = 0.0625;

/// Fixed-point fraction bits for mean accumulation: values are rounded
/// to multiples of 2^-24 before summing, making the sum exact and
/// associative in `i128`.
pub const HIST_SCALE_BITS: u32 = 24;

/// Escapes a string for inclusion in JSON output.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float the JSON way (finite; NaN/inf become null).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// SplitMix64 finalizer — the mixing step behind the order-independent
/// seed digest.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The digest contribution of one `(population index, per-app seed)`
/// assignment. XOR-combining these is order-independent, so the digest
/// proves *which* seed every app received without retaining any rows —
/// the work-queue sweep tests compare it against a hand-rolled
/// sequential split at any fleet size.
pub fn seed_digest_term(index: usize, seed: u64) -> u64 {
    mix64(seed ^ mix64(index as u64))
}

/// One application's row in the fleet report.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Position in the fleet population (stable across thread counts).
    pub index: usize,
    /// Catalog code (e.g. `R-GB`).
    pub code: String,
    /// Full application name.
    pub name: String,
    /// The per-app seed split from the experiment seed.
    pub seed: u64,
    /// Whether the profile-informed 10 % init-share gate passed.
    pub gate_passed: bool,
    /// Whether any import edits shipped.
    pub optimized: bool,
    /// Whether the pre-deployment verifier rolled the deployment back.
    pub rolled_back: bool,
    /// Detector findings (flagged packages).
    pub findings: usize,
    /// Packages actually deferred by the optimizer.
    pub deferred: usize,
    /// Pre-deployment analyzer diagnostics: errors.
    pub analyzer_errors: usize,
    /// Pre-deployment analyzer diagnostics: warnings.
    pub analyzer_warnings: usize,
    /// Mean speedup over the configured measurement runs.
    pub speedup: Speedup,
    /// Baseline cold-start init latency, ms (last run).
    pub baseline_init_ms: f64,
    /// Baseline end-to-end latency, ms (last run).
    pub baseline_e2e_ms: f64,
    /// Final-deployment end-to-end latency, ms (last run).
    pub optimized_e2e_ms: f64,
    /// Fault-injection summary; `None` when the fleet ran without chaos,
    /// which keeps the serialized row byte-identical to chaos-free builds.
    pub chaos: Option<AppChaosRecord>,
    /// Snapshot-cache counters; `None` when the fleet ran without a
    /// [`crate::NodeSnapshotPool`], which keeps the serialized row
    /// byte-identical to pool-free builds.
    pub snapshot: Option<AppSnapshotRecord>,
    /// Zygote fork counters; `None` when the fleet ran without a
    /// [`crate::NodeZygotePool`], which keeps the serialized row
    /// byte-identical to zygote-free builds.
    pub zygote: Option<AppZygoteRecord>,
}

/// One application's zygote-fork counters (zygote-pool fleets only).
///
/// Counters accumulate across every measurement run of the app: the
/// app's [`slimstart_pyrt::zygote::ZygoteCounters`] are shared across
/// its containers and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppZygoteRecord {
    /// Cold starts that forked from the node zygote.
    pub forks: u64,
    /// Module loads acquired at fork cost instead of full init cost.
    pub forked_loads: u64,
    /// Modules of this app resident in its node zygote.
    pub resident_modules: u64,
    /// Modeled bytes those modules pin in the zygote process.
    pub resident_bytes: u64,
}

impl AppZygoteRecord {
    fn to_json(self) -> String {
        format!(
            "{{\"forks\":{},\"forked_loads\":{},\"resident_modules\":{},\"resident_bytes\":{}}}",
            self.forks, self.forked_loads, self.resident_modules, self.resident_bytes,
        )
    }
}

/// One application's snapshot-cache counters (pool-enabled fleets only).
///
/// Counters accumulate across every measurement run of the app: the
/// app's store spans its runs, so later runs hit snapshots captured by
/// earlier ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppSnapshotRecord {
    /// Cold starts served from a stored snapshot.
    pub hits: u64,
    /// Cold starts that had to replay the full module-load path.
    pub misses: u64,
    /// Entries evicted under byte pressure or fingerprint invalidation.
    pub evictions: u64,
    /// Modules faulted in lazily after a working-set restore.
    pub faulted_loads: u64,
    /// Bytes resident in the app's store shard when the app finished.
    pub resident_bytes: u64,
}

impl AppSnapshotRecord {
    fn to_json(self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"faulted_loads\":{},\"resident_bytes\":{}}}",
            self.hits, self.misses, self.evictions, self.faulted_loads, self.resident_bytes,
        )
    }
}

/// One application's fault-injection summary (chaos-enabled fleets only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppChaosRecord {
    /// Faults the app's chaos plan injected across all its runs.
    pub faults: u64,
    /// Profile-collection retries in the recorded (last) run.
    pub profile_retries: u32,
    /// Redeploy retries in the recorded (last) run.
    pub deploy_retries: u32,
    /// Degradation-ladder label of the recorded run (`none`,
    /// `conservative`, or `rolled-back`).
    pub degradation: &'static str,
    /// Faults were injected yet the full optimization still shipped.
    pub recovered: bool,
}

impl AppChaosRecord {
    /// Whether the app landed below the top of the degradation ladder.
    pub fn degraded(&self) -> bool {
        self.degradation != "none"
    }

    /// Whether the redeploy was abandoned (baseline kept).
    pub fn failed(&self) -> bool {
        self.degradation == "rolled-back"
    }

    fn to_json(self) -> String {
        format!(
            "{{\"faults\":{},\"profile_retries\":{},\"deploy_retries\":{},\"degradation\":\"{}\",\"recovered\":{}}}",
            self.faults,
            self.profile_retries,
            self.deploy_retries,
            self.degradation,
            self.recovered,
        )
    }
}

impl AppRecord {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"index\":{},\"code\":\"{}\",\"name\":\"{}\",\"seed\":{},\"gate_passed\":{},\"optimized\":{},\"rolled_back\":{},\"findings\":{},\"deferred\":{},\"analyzer_errors\":{},\"analyzer_warnings\":{},\"speedup\":{{\"init\":{},\"load\":{},\"e2e\":{},\"p99_e2e\":{},\"mem\":{}}},\"baseline_init_ms\":{},\"baseline_e2e_ms\":{},\"optimized_e2e_ms\":{}",
            self.index,
            escape(&self.code),
            escape(&self.name),
            self.seed,
            self.gate_passed,
            self.optimized,
            self.rolled_back,
            self.findings,
            self.deferred,
            self.analyzer_errors,
            self.analyzer_warnings,
            num(self.speedup.init),
            num(self.speedup.load),
            num(self.speedup.e2e),
            num(self.speedup.p99_e2e),
            num(self.speedup.mem),
            num(self.baseline_init_ms),
            num(self.baseline_e2e_ms),
            num(self.optimized_e2e_ms),
        );
        if let Some(chaos) = &self.chaos {
            let _ = write!(out, ",\"chaos\":{}", chaos.to_json());
        }
        if let Some(snapshot) = &self.snapshot {
            let _ = write!(out, ",\"snapshot\":{}", snapshot.to_json());
        }
        if let Some(zygote) = &self.zygote {
            let _ = write!(out, ",\"zygote\":{}", zygote.to_json());
        }
        out.push('}');
        out
    }

    /// Rough heap footprint of the row, for aggregate-size accounting.
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<AppRecord>() + self.code.capacity() + self.name.capacity()
    }
}

/// A deterministic fixed-bin histogram over one speedup dimension.
///
/// Bins are log2-spaced ([`HIST_LOG2_LO`], [`HIST_LOG2_WIDTH`],
/// [`HIST_BINS`]); counts, the fixed-point sum, and exact min/max are
/// all associative under [`merge`](FixedHistogram::merge), so any
/// partitioning of the population produces bit-identical state.
#[derive(Clone, PartialEq)]
pub struct FixedHistogram {
    counts: [u64; HIST_BINS],
    count: u64,
    sum_scaled: i128,
    min: f64,
    max: f64,
}

impl std::fmt::Debug for FixedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram::new()
    }
}

impl FixedHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        FixedHistogram {
            counts: [0; HIST_BINS],
            count: 0,
            sum_scaled: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bin a value lands in (clamped to the edge bins).
    fn bin_of(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        let raw = (v.log2() - HIST_LOG2_LO) / HIST_LOG2_WIDTH;
        if raw < 0.0 {
            0
        } else {
            (raw as usize).min(HIST_BINS - 1)
        }
    }

    /// Geometric midpoint of a bin — the representative value quantiles
    /// report.
    fn bin_mid(bin: usize) -> f64 {
        (HIST_LOG2_LO + (bin as f64 + 0.5) * HIST_LOG2_WIDTH).exp2()
    }

    /// Folds one value. Non-finite values are ignored (the writer would
    /// render them as null anyway); everything else lands in a bin and
    /// the fixed-point sum.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[Self::bin_of(v)] += 1;
        self.count += 1;
        self.sum_scaled += scale_value(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram in. Order-insensitive: every field is
    /// an associative, commutative fold.
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_scaled += other.sum_scaled;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded (finite) values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean, reconstructed from the fixed-point sum (0.0 when
    /// empty). Quantization error is at most 2^-25 per sample —
    /// invisible at the writer's six decimals.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_scaled as f64 / f64::from(1u32 << HIST_SCALE_BITS) / self.count as f64
        }
    }

    /// Exact minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Deterministic approximate quantile: the geometric midpoint of the
    /// bin holding rank `floor(q * (count - 1))`, clamped into the exact
    /// observed `[min, max]` so degenerate samples stay sane. Resolution
    /// is one bin width (±2.2 %).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bin_mid(bin).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// The non-empty bins as `(bin index, count)` pairs, ascending.
    pub fn sparse_bins(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// Rounds a value to fixed point for the associative mean sum.
fn scale_value(v: f64) -> i128 {
    (v * f64::from(1u32 << HIST_SCALE_BITS)).round() as i128
}

/// Fleet-wide distribution of one speedup dimension across applications.
///
/// Since schema v2 the quantiles are histogram-derived (deterministic
/// fixed bins, see [`FixedHistogram`]); `mean`, `min` and `max` are
/// exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupDistribution {
    /// Arithmetic mean (exact, fixed-point accumulated).
    pub mean: f64,
    /// Median (p50), histogram resolution.
    pub median: f64,
    /// 90th percentile, histogram resolution.
    pub p90: f64,
    /// 99th percentile, histogram resolution.
    pub p99: f64,
    /// Minimum (exact).
    pub min: f64,
    /// Maximum (exact).
    pub max: f64,
}

impl SpeedupDistribution {
    /// Distills the summary statistics out of a histogram.
    pub fn from_histogram(hist: &FixedHistogram) -> Self {
        SpeedupDistribution {
            mean: hist.mean(),
            median: hist.quantile(0.50),
            p90: hist.quantile(0.90),
            p99: hist.quantile(0.99),
            min: hist.min(),
            max: hist.max(),
        }
    }

    /// Convenience: folds the values through a [`FixedHistogram`] first.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut hist = FixedHistogram::new();
        for v in values {
            hist.record(v);
        }
        SpeedupDistribution::from_histogram(&hist)
    }

    fn to_json(self, hist: &FixedHistogram) -> String {
        let mut out = format!(
            "{{\"mean\":{},\"median\":{},\"p90\":{},\"p99\":{},\"min\":{},\"max\":{},\"bins\":[",
            num(self.mean),
            num(self.median),
            num(self.p90),
            num(self.p99),
            num(self.min),
            num(self.max),
        );
        for (i, (bin, count)) in hist.sparse_bins().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{bin},{count}]");
        }
        out.push_str("]}");
        out
    }
}

/// Fleet-wide fault-injection summary (chaos-enabled fleets only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetChaosSummary {
    /// Applications with at least one injected fault.
    pub faulted: usize,
    /// Faulted applications that still shipped the full optimization.
    pub recovered: usize,
    /// Applications that fell down the degradation ladder (conservative
    /// mode or rollback).
    pub degraded: usize,
    /// Applications whose redeploy was abandoned (baseline kept).
    pub failed: usize,
    /// Total faults injected across the fleet.
    pub faults_total: u64,
}

impl FleetChaosSummary {
    /// Aggregates the per-app chaos rows; `None` when no row carries one.
    pub fn from_records(apps: &[AppRecord]) -> Option<Self> {
        if apps.iter().all(|a| a.chaos.is_none()) {
            return None;
        }
        let rows = || apps.iter().filter_map(|a| a.chaos.as_ref());
        Some(FleetChaosSummary {
            faulted: rows().filter(|c| c.faults > 0).count(),
            recovered: rows().filter(|c| c.recovered).count(),
            degraded: rows().filter(|c| c.degraded()).count(),
            failed: rows().filter(|c| c.failed()).count(),
            faults_total: rows().map(|c| c.faults).sum(),
        })
    }

    /// Folds one app's chaos row in (the streaming counterpart of
    /// [`from_records`](Self::from_records)).
    pub fn fold(&mut self, chaos: &AppChaosRecord) {
        self.faulted += usize::from(chaos.faults > 0);
        self.recovered += usize::from(chaos.recovered);
        self.degraded += usize::from(chaos.degraded());
        self.failed += usize::from(chaos.failed());
        self.faults_total += chaos.faults;
    }

    /// Merges another summary in (associative and commutative).
    pub fn merge(&mut self, other: &FleetChaosSummary) {
        self.faulted += other.faulted;
        self.recovered += other.recovered;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.faults_total += other.faults_total;
    }

    fn to_json(self) -> String {
        format!(
            "{{\"faulted\":{},\"recovered\":{},\"degraded\":{},\"failed\":{},\"faults_total\":{}}}",
            self.faulted, self.recovered, self.degraded, self.failed, self.faults_total,
        )
    }
}

/// Fleet-wide snapshot-cache summary (pool-enabled fleets only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetSnapshotSummary {
    /// Total snapshot hits across the fleet.
    pub hits: u64,
    /// Total snapshot misses across the fleet.
    pub misses: u64,
    /// Total evictions (byte pressure plus fingerprint invalidation).
    pub evictions: u64,
    /// Total lazily faulted module loads.
    pub faulted_loads: u64,
    /// Sum of per-app resident shard bytes at app completion.
    pub resident_bytes: u64,
}

impl FleetSnapshotSummary {
    /// Aggregates the per-app snapshot rows; `None` when no row carries
    /// one.
    pub fn from_records(apps: &[AppRecord]) -> Option<Self> {
        if apps.iter().all(|a| a.snapshot.is_none()) {
            return None;
        }
        let mut summary = FleetSnapshotSummary::default();
        for snap in apps.iter().filter_map(|a| a.snapshot.as_ref()) {
            summary.fold(snap);
        }
        Some(summary)
    }

    /// Folds one app's snapshot row in (the streaming counterpart of
    /// [`from_records`](Self::from_records)).
    pub fn fold(&mut self, snapshot: &AppSnapshotRecord) {
        self.hits += snapshot.hits;
        self.misses += snapshot.misses;
        self.evictions += snapshot.evictions;
        self.faulted_loads += snapshot.faulted_loads;
        self.resident_bytes += snapshot.resident_bytes;
    }

    /// Merges another summary in (associative and commutative).
    pub fn merge(&mut self, other: &FleetSnapshotSummary) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.faulted_loads += other.faulted_loads;
        self.resident_bytes += other.resident_bytes;
    }

    /// Hit fraction in [0, 1] (0.0 when no cold start consulted the
    /// store).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"faulted_loads\":{},\"resident_bytes\":{}}}",
            self.hits, self.misses, self.evictions, self.faulted_loads, self.resident_bytes,
        )
    }
}

/// Fleet-wide zygote-fork summary (zygote-pool fleets only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetZygoteSummary {
    /// Total cold starts forked from a node zygote.
    pub forks: u64,
    /// Total module loads acquired at fork cost across the fleet.
    pub forked_loads: u64,
    /// Sum of per-app resident module counts.
    pub resident_modules: u64,
    /// Sum of per-app resident zygote bytes.
    pub resident_bytes: u64,
}

impl FleetZygoteSummary {
    /// Aggregates the per-app zygote rows; `None` when no row carries
    /// one.
    pub fn from_records(apps: &[AppRecord]) -> Option<Self> {
        if apps.iter().all(|a| a.zygote.is_none()) {
            return None;
        }
        let mut summary = FleetZygoteSummary::default();
        for zygote in apps.iter().filter_map(|a| a.zygote.as_ref()) {
            summary.fold(zygote);
        }
        Some(summary)
    }

    /// Folds one app's zygote row in (the streaming counterpart of
    /// [`from_records`](Self::from_records)).
    pub fn fold(&mut self, zygote: &AppZygoteRecord) {
        self.forks += zygote.forks;
        self.forked_loads += zygote.forked_loads;
        self.resident_modules += zygote.resident_modules;
        self.resident_bytes += zygote.resident_bytes;
    }

    /// Merges another summary in (associative and commutative).
    pub fn merge(&mut self, other: &FleetZygoteSummary) {
        self.forks += other.forks;
        self.forked_loads += other.forked_loads;
        self.resident_modules += other.resident_modules;
        self.resident_bytes += other.resident_bytes;
    }

    fn to_json(self) -> String {
        format!(
            "{{\"forks\":{},\"forked_loads\":{},\"resident_modules\":{},\"resident_bytes\":{}}}",
            self.forks, self.forked_loads, self.resident_modules, self.resident_bytes,
        )
    }
}

/// Streaming fleet aggregation state: everything a [`FleetReport`] needs,
/// in constant memory.
///
/// Usage contract (asserted): records fold in **ascending population
/// index order** with no gaps, and [`merge`](Self::merge) only accepts a
/// partial whose base index continues where this one ends. The
/// orchestrator satisfies both by folding each work-stealing chunk
/// in-order into its own partial and merging chunk partials in chunk
/// order — which worker ran which chunk is irrelevant.
#[derive(Debug, Clone, Default)]
pub struct FleetAggregator {
    base_index: Option<usize>,
    count: usize,
    gate_passed: usize,
    optimized: usize,
    rolled_back: usize,
    findings_total: usize,
    deferred_total: usize,
    analyzer_warnings_total: usize,
    init: FixedHistogram,
    e2e: FixedHistogram,
    mem: FixedHistogram,
    chaos: Option<FleetChaosSummary>,
    snapshots: Option<FleetSnapshotSummary>,
    zygotes: Option<FleetZygoteSummary>,
    seed_digest: u64,
    detail: Vec<AppRecord>,
    detail_truncated: bool,
}

impl FleetAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        FleetAggregator::default()
    }

    /// Applications folded so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// First population index folded, if any.
    pub fn base_index(&self) -> Option<usize> {
        self.base_index
    }

    /// Folds one finished application into the summary state.
    ///
    /// # Panics
    ///
    /// Panics when `record.index` is not the next expected population
    /// index — out-of-order folding would silently break the
    /// byte-identity contract, so it is a hard error.
    pub fn fold(&mut self, record: AppRecord) {
        match self.base_index {
            None => self.base_index = Some(record.index),
            Some(base) => assert_eq!(
                record.index,
                base + self.count,
                "FleetAggregator::fold out of order"
            ),
        }
        self.count += 1;
        self.gate_passed += usize::from(record.gate_passed);
        self.optimized += usize::from(record.optimized);
        self.rolled_back += usize::from(record.rolled_back);
        self.findings_total += record.findings;
        self.deferred_total += record.deferred;
        self.analyzer_warnings_total += record.analyzer_warnings;
        self.init.record(record.speedup.init);
        self.e2e.record(record.speedup.e2e);
        self.mem.record(record.speedup.mem);
        if let Some(chaos) = &record.chaos {
            self.chaos.get_or_insert_with(Default::default).fold(chaos);
        }
        if let Some(snapshot) = &record.snapshot {
            self.snapshots
                .get_or_insert_with(Default::default)
                .fold(snapshot);
        }
        if let Some(zygote) = &record.zygote {
            self.zygotes
                .get_or_insert_with(Default::default)
                .fold(zygote);
        }
        self.seed_digest ^= seed_digest_term(record.index, record.seed);
        if record.index < DETAIL_ROWS {
            self.detail.push(record);
        } else {
            self.detail_truncated = true;
        }
    }

    /// Merges a partial that continues this one's index range.
    ///
    /// # Panics
    ///
    /// Panics when `other` does not start exactly where this aggregator
    /// ends.
    pub fn merge(&mut self, other: FleetAggregator) {
        let Some(other_base) = other.base_index else {
            return; // empty partial
        };
        let Some(base) = self.base_index else {
            *self = other;
            return;
        };
        assert_eq!(
            other_base,
            base + self.count,
            "FleetAggregator::merge out of order"
        );
        self.count += other.count;
        self.gate_passed += other.gate_passed;
        self.optimized += other.optimized;
        self.rolled_back += other.rolled_back;
        self.findings_total += other.findings_total;
        self.deferred_total += other.deferred_total;
        self.analyzer_warnings_total += other.analyzer_warnings_total;
        self.init.merge(&other.init);
        self.e2e.merge(&other.e2e);
        self.mem.merge(&other.mem);
        if let Some(theirs) = &other.chaos {
            self.chaos
                .get_or_insert_with(Default::default)
                .merge(theirs);
        }
        if let Some(theirs) = &other.snapshots {
            self.snapshots
                .get_or_insert_with(Default::default)
                .merge(theirs);
        }
        if let Some(theirs) = &other.zygotes {
            self.zygotes
                .get_or_insert_with(Default::default)
                .merge(theirs);
        }
        self.seed_digest ^= other.seed_digest;
        self.detail.extend(other.detail);
        self.detail_truncated |= other.detail_truncated;
    }

    /// Rough resident size of the aggregation state, for the bench's
    /// peak-aggregate accounting. Bounded by the fixed histograms plus
    /// the capped detail window, regardless of fleet size.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<FleetAggregator>()
            + self
                .detail
                .iter()
                .map(AppRecord::approx_bytes)
                .sum::<usize>()
    }

    /// Finalizes the aggregation into a report.
    pub fn finish(self, seed: u64, cold_starts: usize, runs: usize) -> FleetReport {
        FleetReport {
            seed,
            cold_starts,
            runs,
            fleet_size: self.count,
            seed_digest: self.seed_digest,
            gate_passed_count: self.gate_passed,
            optimized_count: self.optimized,
            rolled_back_count: self.rolled_back,
            findings_total: self.findings_total,
            deferred_total: self.deferred_total,
            analyzer_warnings_total: self.analyzer_warnings_total,
            init_speedup: SpeedupDistribution::from_histogram(&self.init),
            e2e_speedup: SpeedupDistribution::from_histogram(&self.e2e),
            mem_reduction: SpeedupDistribution::from_histogram(&self.mem),
            init_hist: self.init,
            e2e_hist: self.e2e,
            mem_hist: self.mem,
            chaos: self.chaos,
            snapshots: self.snapshots,
            zygotes: self.zygotes,
            detail: self.detail,
            detail_truncated: self.detail_truncated,
        }
    }
}

/// The retained aggregation path: collect every row, summarize in one
/// pass. This is the differential oracle the streaming
/// [`FleetAggregator`] is tested against (`tests/fleet_streaming_equivalence.rs`)
/// — deliberately the dumbest possible implementation.
pub struct FleetSummary;

impl FleetSummary {
    /// Aggregates a fully retained record vector into a report that must
    /// be byte-identical to the streaming path's.
    pub fn from_records(
        seed: u64,
        cold_starts: usize,
        runs: usize,
        apps: Vec<AppRecord>,
    ) -> FleetReport {
        let mut init = FixedHistogram::new();
        let mut e2e = FixedHistogram::new();
        let mut mem = FixedHistogram::new();
        for a in &apps {
            init.record(a.speedup.init);
            e2e.record(a.speedup.e2e);
            mem.record(a.speedup.mem);
        }
        let seed_digest = apps
            .iter()
            .fold(0u64, |d, a| d ^ seed_digest_term(a.index, a.seed));
        let detail_truncated = apps.len() > DETAIL_ROWS;
        FleetReport {
            seed,
            cold_starts,
            runs,
            fleet_size: apps.len(),
            seed_digest,
            gate_passed_count: apps.iter().filter(|a| a.gate_passed).count(),
            optimized_count: apps.iter().filter(|a| a.optimized).count(),
            rolled_back_count: apps.iter().filter(|a| a.rolled_back).count(),
            findings_total: apps.iter().map(|a| a.findings).sum(),
            deferred_total: apps.iter().map(|a| a.deferred).sum(),
            analyzer_warnings_total: apps.iter().map(|a| a.analyzer_warnings).sum(),
            init_speedup: SpeedupDistribution::from_histogram(&init),
            e2e_speedup: SpeedupDistribution::from_histogram(&e2e),
            mem_reduction: SpeedupDistribution::from_histogram(&mem),
            chaos: FleetChaosSummary::from_records(&apps),
            snapshots: FleetSnapshotSummary::from_records(&apps),
            zygotes: FleetZygoteSummary::from_records(&apps),
            init_hist: init,
            e2e_hist: e2e,
            mem_hist: mem,
            detail: apps.into_iter().take(DETAIL_ROWS).collect(),
            detail_truncated,
        }
    }
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The experiment seed all per-app streams were split from.
    pub seed: u64,
    /// Cold starts per measurement run.
    pub cold_starts: usize,
    /// Measurement runs averaged per application (`SLIMSTART_RUNS`).
    pub runs: usize,
    /// Applications aggregated.
    pub fleet_size: usize,
    /// Order-independent XOR digest over every `(index, seed)`
    /// assignment — proves seed assignment without retaining rows.
    pub seed_digest: u64,
    /// Applications whose profile-informed gate passed.
    pub gate_passed_count: usize,
    /// Applications that shipped at least one import edit.
    pub optimized_count: usize,
    /// Applications rolled back by the pre-deployment verifier.
    pub rolled_back_count: usize,
    /// Total detector findings across the fleet.
    pub findings_total: usize,
    /// Total deferred packages across the fleet.
    pub deferred_total: usize,
    /// Total pre-deployment analyzer warnings across the fleet.
    pub analyzer_warnings_total: usize,
    /// Fleet-wide distribution of cold-init speedups.
    pub init_speedup: SpeedupDistribution,
    /// Fleet-wide distribution of end-to-end speedups.
    pub e2e_speedup: SpeedupDistribution,
    /// Fleet-wide distribution of memory reductions.
    pub mem_reduction: SpeedupDistribution,
    /// Cold-init speedup histogram.
    pub init_hist: FixedHistogram,
    /// End-to-end speedup histogram.
    pub e2e_hist: FixedHistogram,
    /// Memory-reduction histogram.
    pub mem_hist: FixedHistogram,
    /// Fault-injection summary; `None` for chaos-free fleets, which keeps
    /// the serialized report byte-identical to chaos-free builds.
    pub chaos: Option<FleetChaosSummary>,
    /// Snapshot-cache summary; `None` for pool-free fleets, which keeps
    /// the serialized report byte-identical to pool-free builds.
    pub snapshots: Option<FleetSnapshotSummary>,
    /// Zygote-fork summary; `None` for zygote-free fleets, which keeps
    /// the serialized report (including its schema tag) byte-identical
    /// to zygote-free builds.
    pub zygotes: Option<FleetZygoteSummary>,
    /// The first [`DETAIL_ROWS`] per-app rows, in population order.
    pub detail: Vec<AppRecord>,
    /// Whether rows beyond the detail window were summarized only.
    pub detail_truncated: bool,
}

impl FleetReport {
    /// Aggregates retained per-app rows into the fleet report
    /// (delegates to the [`FleetSummary`] oracle path).
    pub fn from_records(seed: u64, cold_starts: usize, runs: usize, apps: Vec<AppRecord>) -> Self {
        FleetSummary::from_records(seed, cold_starts, runs, apps)
    }

    /// Serializes the report. Deterministic: depends only on the fleet
    /// configuration, never on thread count, chunking, or wall-clock.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let schema = if self.zygotes.is_some() {
            REPORT_SCHEMA_ZYGOTE
        } else {
            REPORT_SCHEMA
        };
        let _ = write!(out, "\"schema\":\"{schema}\",");
        let _ = write!(out, "\"seed\":{},", self.seed);
        let _ = write!(out, "\"cold_starts\":{},", self.cold_starts);
        let _ = write!(out, "\"runs\":{},", self.runs);
        let _ = write!(out, "\"fleet_size\":{},", self.fleet_size);
        let _ = write!(out, "\"seed_digest\":{},", self.seed_digest);
        let _ = write!(out, "\"gate_passed\":{},", self.gate_passed_count);
        let _ = write!(out, "\"optimized\":{},", self.optimized_count);
        let _ = write!(out, "\"rolled_back\":{},", self.rolled_back_count);
        let _ = write!(out, "\"findings_total\":{},", self.findings_total);
        let _ = write!(out, "\"deferred_total\":{},", self.deferred_total);
        let _ = write!(
            out,
            "\"analyzer_warnings_total\":{},",
            self.analyzer_warnings_total
        );
        if let Some(chaos) = &self.chaos {
            let _ = write!(out, "\"chaos\":{},", chaos.to_json());
        }
        if let Some(snapshots) = &self.snapshots {
            let _ = write!(out, "\"snapshots\":{},", snapshots.to_json());
        }
        if let Some(zygotes) = &self.zygotes {
            let _ = write!(out, "\"zygotes\":{},", zygotes.to_json());
        }
        let _ = write!(
            out,
            "\"histogram\":{{\"bins\":{HIST_BINS},\"log2_lo\":{},\"log2_width\":{},\"scale_bits\":{HIST_SCALE_BITS}}},",
            num(HIST_LOG2_LO),
            num(HIST_LOG2_WIDTH),
        );
        let _ = write!(
            out,
            "\"init_speedup\":{},",
            self.init_speedup.to_json(&self.init_hist)
        );
        let _ = write!(
            out,
            "\"e2e_speedup\":{},",
            self.e2e_speedup.to_json(&self.e2e_hist)
        );
        let _ = write!(
            out,
            "\"mem_reduction\":{},",
            self.mem_reduction.to_json(&self.mem_hist)
        );
        out.push_str("\"detail\":[");
        for (i, app) in self.detail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&app.to_json());
        }
        out.push_str("],");
        let _ = write!(out, "\"detail_truncated\":{}", self.detail_truncated);
        out.push('}');
        out
    }

    /// Renders a human-readable fleet summary table over the detail
    /// window.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:<9} {:<26} {:>5} {:>9} {:>9} {:>9}  NOTES",
            "#", "CODE", "NAME", "GATE", "INITx", "E2Ex", "MEMx"
        );
        for a in &self.detail {
            let mut notes = Vec::new();
            if a.optimized {
                notes.push(format!("{} deferred", a.deferred));
            }
            if a.rolled_back {
                notes.push("rolled back".to_string());
            }
            if let Some(chaos) = &a.chaos {
                if chaos.degradation == "conservative" {
                    notes.push("conservative".to_string());
                }
                if chaos.recovered {
                    notes.push(format!("recovered from {} faults", chaos.faults));
                }
            }
            let _ = writeln!(
                out,
                "{:<5} {:<9} {:<26} {:>5} {:>9.2} {:>9.2} {:>9.2}  {}",
                a.index,
                a.code,
                a.name,
                if a.gate_passed { "yes" } else { "no" },
                a.speedup.init,
                a.speedup.e2e,
                a.speedup.mem,
                notes.join(", ")
            );
        }
        if self.detail_truncated {
            let _ = writeln!(
                out,
                "(first {} of {} apps; the rest live in the summary only)",
                self.detail.len(),
                self.fleet_size,
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "fleet: {} apps | {} above gate | {} optimized | {} rolled back | {} findings",
            self.fleet_size,
            self.gate_passed_count,
            self.optimized_count,
            self.rolled_back_count,
            self.findings_total,
        );
        if let Some(chaos) = &self.chaos {
            let _ = writeln!(
                out,
                "chaos: {} faults injected | {} apps faulted | {} recovered | {} degraded | {} failed",
                chaos.faults_total, chaos.faulted, chaos.recovered, chaos.degraded, chaos.failed,
            );
        }
        if let Some(snapshots) = &self.snapshots {
            let _ = writeln!(
                out,
                "snapshots: {} hits | {} misses | {:.1}% hit rate | {} evictions | {} faulted loads | {} KiB resident",
                snapshots.hits,
                snapshots.misses,
                snapshots.hit_rate() * 100.0,
                snapshots.evictions,
                snapshots.faulted_loads,
                snapshots.resident_bytes / 1024,
            );
        }
        if let Some(zygotes) = &self.zygotes {
            let _ = writeln!(
                out,
                "zygotes: {} forks | {} forked loads | {} resident modules | {} KiB resident",
                zygotes.forks,
                zygotes.forked_loads,
                zygotes.resident_modules,
                zygotes.resident_bytes / 1024,
            );
        }
        let _ = writeln!(
            out,
            "init speedup : mean {:.2}x  median {:.2}x  p90 {:.2}x  p99 {:.2}x",
            self.init_speedup.mean,
            self.init_speedup.median,
            self.init_speedup.p90,
            self.init_speedup.p99,
        );
        let _ = writeln!(
            out,
            "e2e speedup  : mean {:.2}x  median {:.2}x  p90 {:.2}x  p99 {:.2}x",
            self.e2e_speedup.mean,
            self.e2e_speedup.median,
            self.e2e_speedup.p90,
            self.e2e_speedup.p99,
        );
        let _ = writeln!(
            out,
            "mem reduction: mean {:.2}x  median {:.2}x  p90 {:.2}x  p99 {:.2}x",
            self.mem_reduction.mean,
            self.mem_reduction.median,
            self.mem_reduction.p90,
            self.mem_reduction.p99,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, init: f64, e2e: f64) -> AppRecord {
        AppRecord {
            index,
            code: format!("X-{index}"),
            name: format!("app {index}"),
            seed: index as u64,
            gate_passed: init > 1.0,
            optimized: init > 1.0,
            rolled_back: false,
            findings: usize::from(init > 1.0),
            deferred: usize::from(init > 1.0),
            analyzer_errors: 0,
            analyzer_warnings: 1,
            speedup: Speedup {
                init,
                load: init,
                e2e,
                p99_init: init,
                p99_load: init,
                p99_e2e: e2e,
                mem: 1.1,
            },
            baseline_init_ms: 400.0,
            baseline_e2e_ms: 500.0,
            optimized_e2e_ms: 500.0 / e2e,
            chaos: None,
            snapshot: None,
            zygote: None,
        }
    }

    #[test]
    fn aggregation_counts_and_distributions() {
        let apps = vec![
            record(0, 2.0, 1.5),
            record(1, 1.0, 1.0),
            record(2, 1.6, 1.3),
        ];
        let report = FleetReport::from_records(7, 100, 1, apps);
        assert_eq!(report.gate_passed_count, 2);
        assert_eq!(report.optimized_count, 2);
        assert_eq!(report.findings_total, 2);
        assert_eq!(report.analyzer_warnings_total, 3);
        // Mean is exact (fixed-point); min/max exact; quantiles land
        // within a bin width of the sample.
        assert!((report.init_speedup.mean - (2.0 + 1.0 + 1.6) / 3.0).abs() < 1e-6);
        assert!((report.init_speedup.min - 1.0).abs() < 1e-9);
        assert!((report.init_speedup.max - 2.0).abs() < 1e-9);
        assert!((report.init_speedup.median - 1.6).abs() < 0.05);
    }

    #[test]
    fn streaming_fold_matches_retained_oracle() {
        let apps: Vec<AppRecord> = (0..50)
            .map(|i| record(i, 1.0 + (i % 7) as f64 * 0.2, 1.0 + (i % 5) as f64 * 0.1))
            .collect();
        let oracle = FleetSummary::from_records(7, 100, 1, apps.clone());

        // Stream through chunked partials merged in index order.
        let mut root = FleetAggregator::new();
        for chunk in apps.chunks(8) {
            let mut partial = FleetAggregator::new();
            for rec in chunk {
                partial.fold(rec.clone());
            }
            root.merge(partial);
        }
        let streamed = root.finish(7, 100, 1);
        assert_eq!(oracle.to_json(), streamed.to_json());
        assert_eq!(oracle.seed_digest, streamed.seed_digest);
        assert!(streamed.detail_truncated);
        assert_eq!(streamed.detail.len(), DETAIL_ROWS);
    }

    #[test]
    fn fold_and_merge_enforce_index_order() {
        let mut agg = FleetAggregator::new();
        agg.fold(record(0, 1.5, 1.2));
        let out_of_order = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut agg = agg.clone();
            agg.fold(record(2, 1.5, 1.2));
        }));
        assert!(out_of_order.is_err(), "gap in fold order must panic");

        let mut gap = FleetAggregator::new();
        gap.fold(record(5, 1.5, 1.2));
        let bad_merge = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut agg = agg.clone();
            agg.merge(gap.clone());
        }));
        assert!(bad_merge.is_err(), "non-contiguous merge must panic");
    }

    #[test]
    fn histogram_merge_is_associative_with_fixed_point_means() {
        let values: Vec<f64> = (0..1000).map(|i| 0.5 + (i % 97) as f64 * 0.037).collect();
        let mut whole = FixedHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        // Two very different partitions.
        for split in [1usize, 7, 333] {
            let mut merged = FixedHistogram::new();
            for chunk in values.chunks(split) {
                let mut part = FixedHistogram::new();
                for &v in chunk {
                    part.record(v);
                }
                merged.merge(&part);
            }
            assert_eq!(whole, merged, "partition by {split} changed the state");
            assert_eq!(whole.mean().to_bits(), merged.mean().to_bits());
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = FleetReport::from_records(7, 100, 2, vec![record(0, 2.0, 1.5)]);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":\"slimstart-fleet-report/v3\""));
        assert!(json.contains("\"fleet_size\":1"));
        assert!(json.contains("\"runs\":2"));
        assert!(json.contains("\"code\":\"X-0\""));
        assert!(json.contains("\"seed_digest\":"));
        assert!(json.contains("\"detail_truncated\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_fleet_serializes() {
        let report = FleetReport::from_records(7, 100, 1, Vec::new());
        assert!(report.to_json().contains("\"detail\":[]"));
        assert_eq!(report.init_speedup.mean, 0.0);
        assert_eq!(report.fleet_size, 0);
        let streamed = FleetAggregator::new().finish(7, 100, 1);
        assert_eq!(report.to_json(), streamed.to_json());
    }

    #[test]
    fn chaos_free_report_omits_every_chaos_key() {
        let report = FleetReport::from_records(7, 100, 1, vec![record(0, 2.0, 1.5)]);
        assert!(report.chaos.is_none());
        assert!(!report.to_json().contains("chaos"));
        assert!(!report.render_text().contains("chaos"));
    }

    #[test]
    fn chaos_rows_serialize_and_aggregate() {
        let mut a = record(0, 2.0, 1.5);
        a.chaos = Some(AppChaosRecord {
            faults: 4,
            profile_retries: 1,
            deploy_retries: 0,
            degradation: "none",
            recovered: true,
        });
        let mut b = record(1, 1.0, 1.0);
        b.chaos = Some(AppChaosRecord {
            faults: 9,
            profile_retries: 2,
            deploy_retries: 2,
            degradation: "rolled-back",
            recovered: false,
        });
        let report = FleetReport::from_records(7, 100, 1, vec![a.clone(), b.clone()]);
        let summary = report.chaos.unwrap();
        assert_eq!(summary.faulted, 2);
        assert_eq!(summary.recovered, 1);
        assert_eq!(summary.degraded, 1);
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.faults_total, 13);
        let json = report.to_json();
        assert!(json.contains("\"chaos\":{\"faulted\":2"));
        assert!(json.contains("\"degradation\":\"rolled-back\""));
        assert!(report.render_text().contains("chaos: 13 faults injected"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // The streaming path aggregates chaos identically.
        let mut agg = FleetAggregator::new();
        agg.fold(a);
        agg.fold(b);
        assert_eq!(agg.finish(7, 100, 1).to_json(), json);
    }

    #[test]
    fn pool_free_report_omits_every_snapshot_key() {
        let report = FleetReport::from_records(7, 100, 1, vec![record(0, 2.0, 1.5)]);
        assert!(report.snapshots.is_none());
        assert!(!report.to_json().contains("snapshot"));
        assert!(!report.render_text().contains("snapshots"));
    }

    #[test]
    fn snapshot_rows_serialize_and_aggregate() {
        let mut a = record(0, 2.0, 1.5);
        a.snapshot = Some(AppSnapshotRecord {
            hits: 9,
            misses: 1,
            evictions: 2,
            faulted_loads: 3,
            resident_bytes: 4096,
        });
        let mut b = record(1, 1.0, 1.0);
        b.snapshot = Some(AppSnapshotRecord {
            hits: 1,
            misses: 3,
            evictions: 0,
            faulted_loads: 0,
            resident_bytes: 1024,
        });
        let report = FleetReport::from_records(7, 100, 1, vec![a.clone(), b.clone()]);
        let summary = report.snapshots.unwrap();
        assert_eq!(summary.hits, 10);
        assert_eq!(summary.misses, 4);
        assert_eq!(summary.evictions, 2);
        assert_eq!(summary.faulted_loads, 3);
        assert_eq!(summary.resident_bytes, 5120);
        assert!((summary.hit_rate() - 10.0 / 14.0).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.contains("\"snapshots\":{\"hits\":10"));
        assert!(json.contains("\"snapshot\":{\"hits\":9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.render_text();
        assert!(text.contains("snapshots: 10 hits | 4 misses | 71.4% hit rate"));

        // The streaming path aggregates snapshot counters identically.
        let mut agg = FleetAggregator::new();
        agg.fold(a);
        agg.fold(b);
        assert_eq!(agg.finish(7, 100, 1).to_json(), json);
    }

    #[test]
    fn empty_snapshot_summary_hit_rate_is_zero() {
        assert_eq!(FleetSnapshotSummary::default().hit_rate(), 0.0);
    }

    #[test]
    fn zygote_free_report_keeps_the_v3_schema_and_omits_zygote_keys() {
        let report = FleetReport::from_records(7, 100, 1, vec![record(0, 2.0, 1.5)]);
        assert!(report.zygotes.is_none());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"slimstart-fleet-report/v3\""));
        assert!(!json.contains("zygote"));
        assert!(!report.render_text().contains("zygotes"));
    }

    #[test]
    fn zygote_rows_serialize_aggregate_and_bump_the_schema() {
        let mut a = record(0, 2.0, 1.5);
        a.zygote = Some(AppZygoteRecord {
            forks: 10,
            forked_loads: 40,
            resident_modules: 4,
            resident_bytes: 8192,
        });
        let mut b = record(1, 1.0, 1.0);
        b.zygote = Some(AppZygoteRecord {
            forks: 2,
            forked_loads: 6,
            resident_modules: 3,
            resident_bytes: 2048,
        });
        let report = FleetReport::from_records(7, 100, 1, vec![a.clone(), b.clone()]);
        let summary = report.zygotes.unwrap();
        assert_eq!(summary.forks, 12);
        assert_eq!(summary.forked_loads, 46);
        assert_eq!(summary.resident_modules, 7);
        assert_eq!(summary.resident_bytes, 10_240);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"slimstart-fleet-report/v4\""));
        assert!(json.contains("\"zygotes\":{\"forks\":12"));
        assert!(json.contains("\"zygote\":{\"forks\":10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.render_text();
        assert!(text.contains("zygotes: 12 forks | 46 forked loads"));

        // The streaming path aggregates zygote counters identically.
        let mut agg = FleetAggregator::new();
        agg.fold(a);
        agg.fold(b);
        assert_eq!(agg.finish(7, 100, 1).to_json(), json);
    }

    #[test]
    fn detail_window_is_capped_and_constant_memory() {
        let mut agg = FleetAggregator::new();
        for i in 0..10_000 {
            agg.fold(record(i, 1.5, 1.2));
        }
        let bytes = agg.approx_bytes();
        assert!(
            bytes < 64 * 1024,
            "aggregate state must stay small at 10k apps, got {bytes}"
        );
        let report = agg.finish(7, 100, 1);
        assert_eq!(report.fleet_size, 10_000);
        assert_eq!(report.detail.len(), DETAIL_ROWS);
        assert!(report.detail_truncated);
    }

    #[test]
    fn quantiles_are_clamped_into_the_observed_range() {
        let mut hist = FixedHistogram::new();
        hist.record(1.59);
        let d = SpeedupDistribution::from_histogram(&hist);
        assert_eq!(d.median, 1.59);
        assert_eq!(d.p99, 1.59);
        assert_eq!(d.min, 1.59);
        assert_eq!(d.max, 1.59);
    }
}
