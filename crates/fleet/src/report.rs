//! The aggregated fleet report.
//!
//! Everything in a [`FleetReport`] is a deterministic function of the
//! fleet configuration (population, experiment seed, cold starts, runs):
//! per-app rows are keyed by population index, fleet-wide distributions
//! come from [`slimstart_simcore::stats::Percentiles`] over those rows,
//! and the JSON writer is the same hand-rolled style as
//! `slimstart-core/src/export.rs`. Wall-clock timing deliberately lives
//! in [`crate::FleetRunStats`], *outside* this report, so serialized
//! output is byte-identical regardless of worker-pool size.

use std::fmt::Write as _;

use slimstart_platform::metrics::Speedup;
use slimstart_simcore::stats::Percentiles;

/// Escapes a string for inclusion in JSON output.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float the JSON way (finite; NaN/inf become null).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// One application's row in the fleet report.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Position in the fleet population (stable across thread counts).
    pub index: usize,
    /// Catalog code (e.g. `R-GB`).
    pub code: String,
    /// Full application name.
    pub name: String,
    /// The per-app seed split from the experiment seed.
    pub seed: u64,
    /// Whether the profile-informed 10 % init-share gate passed.
    pub gate_passed: bool,
    /// Whether any import edits shipped.
    pub optimized: bool,
    /// Whether the pre-deployment verifier rolled the deployment back.
    pub rolled_back: bool,
    /// Detector findings (flagged packages).
    pub findings: usize,
    /// Packages actually deferred by the optimizer.
    pub deferred: usize,
    /// Pre-deployment analyzer diagnostics: errors.
    pub analyzer_errors: usize,
    /// Pre-deployment analyzer diagnostics: warnings.
    pub analyzer_warnings: usize,
    /// Mean speedup over the configured measurement runs.
    pub speedup: Speedup,
    /// Baseline cold-start init latency, ms (last run).
    pub baseline_init_ms: f64,
    /// Baseline end-to-end latency, ms (last run).
    pub baseline_e2e_ms: f64,
    /// Final-deployment end-to-end latency, ms (last run).
    pub optimized_e2e_ms: f64,
    /// Fault-injection summary; `None` when the fleet ran without chaos,
    /// which keeps the serialized row byte-identical to chaos-free builds.
    pub chaos: Option<AppChaosRecord>,
}

/// One application's fault-injection summary (chaos-enabled fleets only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppChaosRecord {
    /// Faults the app's chaos plan injected across all its runs.
    pub faults: u64,
    /// Profile-collection retries in the recorded (last) run.
    pub profile_retries: u32,
    /// Redeploy retries in the recorded (last) run.
    pub deploy_retries: u32,
    /// Degradation-ladder label of the recorded run (`none`,
    /// `conservative`, or `rolled-back`).
    pub degradation: &'static str,
    /// Faults were injected yet the full optimization still shipped.
    pub recovered: bool,
}

impl AppChaosRecord {
    /// Whether the app landed below the top of the degradation ladder.
    pub fn degraded(&self) -> bool {
        self.degradation != "none"
    }

    /// Whether the redeploy was abandoned (baseline kept).
    pub fn failed(&self) -> bool {
        self.degradation == "rolled-back"
    }

    fn to_json(self) -> String {
        format!(
            "{{\"faults\":{},\"profile_retries\":{},\"deploy_retries\":{},\"degradation\":\"{}\",\"recovered\":{}}}",
            self.faults,
            self.profile_retries,
            self.deploy_retries,
            self.degradation,
            self.recovered,
        )
    }
}

impl AppRecord {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"index\":{},\"code\":\"{}\",\"name\":\"{}\",\"seed\":{},\"gate_passed\":{},\"optimized\":{},\"rolled_back\":{},\"findings\":{},\"deferred\":{},\"analyzer_errors\":{},\"analyzer_warnings\":{},\"speedup\":{{\"init\":{},\"load\":{},\"e2e\":{},\"p99_e2e\":{},\"mem\":{}}},\"baseline_init_ms\":{},\"baseline_e2e_ms\":{},\"optimized_e2e_ms\":{}",
            self.index,
            escape(&self.code),
            escape(&self.name),
            self.seed,
            self.gate_passed,
            self.optimized,
            self.rolled_back,
            self.findings,
            self.deferred,
            self.analyzer_errors,
            self.analyzer_warnings,
            num(self.speedup.init),
            num(self.speedup.load),
            num(self.speedup.e2e),
            num(self.speedup.p99_e2e),
            num(self.speedup.mem),
            num(self.baseline_init_ms),
            num(self.baseline_e2e_ms),
            num(self.optimized_e2e_ms),
        );
        if let Some(chaos) = &self.chaos {
            let _ = write!(out, ",\"chaos\":{}", chaos.to_json());
        }
        out.push('}');
        out
    }
}

/// Fleet-wide distribution of one speedup dimension across applications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupDistribution {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SpeedupDistribution {
    /// Computes the distribution over a non-empty value set; zeros when
    /// empty.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let p: Percentiles = values.into_iter().collect();
        if p.is_empty() {
            return SpeedupDistribution {
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                p99: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let sorted_min = p.quantile(0.0).unwrap_or(0.0);
        SpeedupDistribution {
            mean: p.mean().unwrap_or(0.0),
            median: p.median().unwrap_or(0.0),
            p90: p.quantile(0.90).unwrap_or(0.0),
            p99: p.p99().unwrap_or(0.0),
            min: sorted_min,
            max: p.quantile(1.0).unwrap_or(0.0),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"mean\":{},\"median\":{},\"p90\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
            num(self.mean),
            num(self.median),
            num(self.p90),
            num(self.p99),
            num(self.min),
            num(self.max),
        )
    }
}

/// The aggregated result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The experiment seed all per-app streams were split from.
    pub seed: u64,
    /// Cold starts per measurement run.
    pub cold_starts: usize,
    /// Measurement runs averaged per application (`SLIMSTART_RUNS`).
    pub runs: usize,
    /// Per-application rows, in population order.
    pub apps: Vec<AppRecord>,
    /// Fleet-wide distribution of cold-init speedups.
    pub init_speedup: SpeedupDistribution,
    /// Fleet-wide distribution of end-to-end speedups.
    pub e2e_speedup: SpeedupDistribution,
    /// Fleet-wide distribution of memory reductions.
    pub mem_reduction: SpeedupDistribution,
    /// Applications whose profile-informed gate passed.
    pub gate_passed_count: usize,
    /// Applications that shipped at least one import edit.
    pub optimized_count: usize,
    /// Applications rolled back by the pre-deployment verifier.
    pub rolled_back_count: usize,
    /// Total detector findings across the fleet.
    pub findings_total: usize,
    /// Total deferred packages across the fleet.
    pub deferred_total: usize,
    /// Total pre-deployment analyzer warnings across the fleet.
    pub analyzer_warnings_total: usize,
    /// Fault-injection summary; `None` for chaos-free fleets, which keeps
    /// the serialized report byte-identical to chaos-free builds.
    pub chaos: Option<FleetChaosSummary>,
}

/// Fleet-wide fault-injection summary (chaos-enabled fleets only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetChaosSummary {
    /// Applications with at least one injected fault.
    pub faulted: usize,
    /// Faulted applications that still shipped the full optimization.
    pub recovered: usize,
    /// Applications that fell down the degradation ladder (conservative
    /// mode or rollback).
    pub degraded: usize,
    /// Applications whose redeploy was abandoned (baseline kept).
    pub failed: usize,
    /// Total faults injected across the fleet.
    pub faults_total: u64,
}

impl FleetChaosSummary {
    /// Aggregates the per-app chaos rows; `None` when no row carries one.
    pub fn from_records(apps: &[AppRecord]) -> Option<Self> {
        if apps.iter().all(|a| a.chaos.is_none()) {
            return None;
        }
        let rows = || apps.iter().filter_map(|a| a.chaos.as_ref());
        Some(FleetChaosSummary {
            faulted: rows().filter(|c| c.faults > 0).count(),
            recovered: rows().filter(|c| c.recovered).count(),
            degraded: rows().filter(|c| c.degraded()).count(),
            failed: rows().filter(|c| c.failed()).count(),
            faults_total: rows().map(|c| c.faults).sum(),
        })
    }

    fn to_json(self) -> String {
        format!(
            "{{\"faulted\":{},\"recovered\":{},\"degraded\":{},\"failed\":{},\"faults_total\":{}}}",
            self.faulted, self.recovered, self.degraded, self.failed, self.faults_total,
        )
    }
}

impl FleetReport {
    /// Aggregates per-app rows into the fleet report.
    pub fn from_records(seed: u64, cold_starts: usize, runs: usize, apps: Vec<AppRecord>) -> Self {
        let init_speedup = SpeedupDistribution::from_values(apps.iter().map(|a| a.speedup.init));
        let e2e_speedup = SpeedupDistribution::from_values(apps.iter().map(|a| a.speedup.e2e));
        let mem_reduction = SpeedupDistribution::from_values(apps.iter().map(|a| a.speedup.mem));
        FleetReport {
            seed,
            cold_starts,
            runs,
            gate_passed_count: apps.iter().filter(|a| a.gate_passed).count(),
            optimized_count: apps.iter().filter(|a| a.optimized).count(),
            rolled_back_count: apps.iter().filter(|a| a.rolled_back).count(),
            findings_total: apps.iter().map(|a| a.findings).sum(),
            deferred_total: apps.iter().map(|a| a.deferred).sum(),
            analyzer_warnings_total: apps.iter().map(|a| a.analyzer_warnings).sum(),
            chaos: FleetChaosSummary::from_records(&apps),
            init_speedup,
            e2e_speedup,
            mem_reduction,
            apps,
        }
    }

    /// Serializes the report. Deterministic: depends only on the fleet
    /// configuration, never on thread count or wall-clock.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"seed\":{},", self.seed);
        let _ = write!(out, "\"cold_starts\":{},", self.cold_starts);
        let _ = write!(out, "\"runs\":{},", self.runs);
        let _ = write!(out, "\"fleet_size\":{},", self.apps.len());
        let _ = write!(out, "\"gate_passed\":{},", self.gate_passed_count);
        let _ = write!(out, "\"optimized\":{},", self.optimized_count);
        let _ = write!(out, "\"rolled_back\":{},", self.rolled_back_count);
        let _ = write!(out, "\"findings_total\":{},", self.findings_total);
        let _ = write!(out, "\"deferred_total\":{},", self.deferred_total);
        let _ = write!(
            out,
            "\"analyzer_warnings_total\":{},",
            self.analyzer_warnings_total
        );
        if let Some(chaos) = &self.chaos {
            let _ = write!(out, "\"chaos\":{},", chaos.to_json());
        }
        let _ = write!(out, "\"init_speedup\":{},", self.init_speedup.to_json());
        let _ = write!(out, "\"e2e_speedup\":{},", self.e2e_speedup.to_json());
        let _ = write!(out, "\"mem_reduction\":{},", self.mem_reduction.to_json());
        out.push_str("\"apps\":[");
        for (i, app) in self.apps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&app.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Renders a human-readable fleet summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:<9} {:<26} {:>5} {:>9} {:>9} {:>9}  NOTES",
            "#", "CODE", "NAME", "GATE", "INITx", "E2Ex", "MEMx"
        );
        for a in &self.apps {
            let mut notes = Vec::new();
            if a.optimized {
                notes.push(format!("{} deferred", a.deferred));
            }
            if a.rolled_back {
                notes.push("rolled back".to_string());
            }
            if let Some(chaos) = &a.chaos {
                if chaos.degradation == "conservative" {
                    notes.push("conservative".to_string());
                }
                if chaos.recovered {
                    notes.push(format!("recovered from {} faults", chaos.faults));
                }
            }
            let _ = writeln!(
                out,
                "{:<5} {:<9} {:<26} {:>5} {:>9.2} {:>9.2} {:>9.2}  {}",
                a.index,
                a.code,
                a.name,
                if a.gate_passed { "yes" } else { "no" },
                a.speedup.init,
                a.speedup.e2e,
                a.speedup.mem,
                notes.join(", ")
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "fleet: {} apps | {} above gate | {} optimized | {} rolled back | {} findings",
            self.apps.len(),
            self.gate_passed_count,
            self.optimized_count,
            self.rolled_back_count,
            self.findings_total,
        );
        if let Some(chaos) = &self.chaos {
            let _ = writeln!(
                out,
                "chaos: {} faults injected | {} apps faulted | {} recovered | {} degraded | {} failed",
                chaos.faults_total, chaos.faulted, chaos.recovered, chaos.degraded, chaos.failed,
            );
        }
        let _ = writeln!(
            out,
            "init speedup : mean {:.2}x  median {:.2}x  p90 {:.2}x  p99 {:.2}x",
            self.init_speedup.mean,
            self.init_speedup.median,
            self.init_speedup.p90,
            self.init_speedup.p99,
        );
        let _ = writeln!(
            out,
            "e2e speedup  : mean {:.2}x  median {:.2}x  p90 {:.2}x  p99 {:.2}x",
            self.e2e_speedup.mean,
            self.e2e_speedup.median,
            self.e2e_speedup.p90,
            self.e2e_speedup.p99,
        );
        let _ = writeln!(
            out,
            "mem reduction: mean {:.2}x  median {:.2}x  p90 {:.2}x  p99 {:.2}x",
            self.mem_reduction.mean,
            self.mem_reduction.median,
            self.mem_reduction.p90,
            self.mem_reduction.p99,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, init: f64, e2e: f64) -> AppRecord {
        AppRecord {
            index,
            code: format!("X-{index}"),
            name: format!("app {index}"),
            seed: index as u64,
            gate_passed: init > 1.0,
            optimized: init > 1.0,
            rolled_back: false,
            findings: usize::from(init > 1.0),
            deferred: usize::from(init > 1.0),
            analyzer_errors: 0,
            analyzer_warnings: 1,
            speedup: Speedup {
                init,
                load: init,
                e2e,
                p99_init: init,
                p99_load: init,
                p99_e2e: e2e,
                mem: 1.1,
            },
            baseline_init_ms: 400.0,
            baseline_e2e_ms: 500.0,
            optimized_e2e_ms: 500.0 / e2e,
            chaos: None,
        }
    }

    #[test]
    fn aggregation_counts_and_percentiles() {
        let apps = vec![
            record(0, 2.0, 1.5),
            record(1, 1.0, 1.0),
            record(2, 1.6, 1.3),
        ];
        let report = FleetReport::from_records(7, 100, 1, apps);
        assert_eq!(report.gate_passed_count, 2);
        assert_eq!(report.optimized_count, 2);
        assert_eq!(report.findings_total, 2);
        assert_eq!(report.analyzer_warnings_total, 3);
        assert!((report.init_speedup.median - 1.6).abs() < 1e-9);
        assert!((report.init_speedup.max - 2.0).abs() < 1e-9);
        assert!((report.init_speedup.min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = FleetReport::from_records(7, 100, 2, vec![record(0, 2.0, 1.5)]);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"fleet_size\":1"));
        assert!(json.contains("\"runs\":2"));
        assert!(json.contains("\"code\":\"X-0\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_fleet_serializes() {
        let report = FleetReport::from_records(7, 100, 1, Vec::new());
        assert!(report.to_json().contains("\"apps\":[]"));
        assert_eq!(report.init_speedup.mean, 0.0);
    }

    #[test]
    fn chaos_free_report_omits_every_chaos_key() {
        let report = FleetReport::from_records(7, 100, 1, vec![record(0, 2.0, 1.5)]);
        assert!(report.chaos.is_none());
        assert!(!report.to_json().contains("chaos"));
        assert!(!report.render_text().contains("chaos"));
    }

    #[test]
    fn chaos_rows_serialize_and_aggregate() {
        let mut a = record(0, 2.0, 1.5);
        a.chaos = Some(AppChaosRecord {
            faults: 4,
            profile_retries: 1,
            deploy_retries: 0,
            degradation: "none",
            recovered: true,
        });
        let mut b = record(1, 1.0, 1.0);
        b.chaos = Some(AppChaosRecord {
            faults: 9,
            profile_retries: 2,
            deploy_retries: 2,
            degradation: "rolled-back",
            recovered: false,
        });
        let report = FleetReport::from_records(7, 100, 1, vec![a, b]);
        let summary = report.chaos.unwrap();
        assert_eq!(summary.faulted, 2);
        assert_eq!(summary.recovered, 1);
        assert_eq!(summary.degraded, 1);
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.faults_total, 13);
        let json = report.to_json();
        assert!(json.contains("\"chaos\":{\"faulted\":2"));
        assert!(json.contains("\"degradation\":\"rolled-back\""));
        assert!(report.render_text().contains("chaos: 13 faults injected"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
