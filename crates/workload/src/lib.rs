//! # slimstart-workload
//!
//! Workload generation for the SlimStart evaluation:
//!
//! * [`spec`] — declarative workload descriptions (handler mix + arrival
//!   process) and resolution against an application;
//! * [`generator`] — deterministic invocation-stream generation, including
//!   the paper's 500-cold-start evaluation series;
//! * [`drift`] — time-varying handler mixes for the adaptive-mechanism
//!   experiments (§IV-C, Fig. 10);
//! * [`trace`] — a synthetic *production trace* calibrated to the paper's
//!   §II-C statistics from Azure traces: 119 applications, 54 % with more
//!   than one entry point, top handlers dominating invocations (Fig. 3),
//!   and drift episodes at specific hours (Fig. 10).
//!
//! # Example
//!
//! ```
//! use slimstart_workload::spec::{ArrivalProcess, WorkloadSpec};
//! use slimstart_workload::generator::generate;
//! use slimstart_appmodel::catalog::by_code;
//! use slimstart_simcore::time::SimDuration;
//!
//! let app = by_code("R-GB").expect("entry").build(7)?.app;
//! let spec = WorkloadSpec::uniform_cold_starts(&app, 100);
//! let invocations = generate(&spec, &app, 42)?;
//! assert_eq!(invocations.len(), 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod drift;
pub mod generator;
pub mod spec;
pub mod trace;

pub use generator::{generate, merge_streams, WorkloadError};
pub use spec::{ArrivalProcess, HandlerMix, WorkloadSpec};
pub use trace::{ProductionTrace, TraceConfig};
