//! Declarative workload specifications.

use slimstart_appmodel::Application;
use slimstart_simcore::time::SimDuration;

/// How much of the request stream each handler receives.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerMix {
    /// Handler name (must exist in the application).
    pub name: String,
    /// Relative weight (normalized internally; zero = never invoked, the
    /// paper's workload-dead entry points).
    pub weight: f64,
}

/// When requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// `count` requests spaced farther apart than the keep-alive window so
    /// that *every* request cold-starts — the paper's evaluation
    /// methodology ("each application is executed with 500 cold starts").
    ColdStartSeries {
        /// Number of requests.
        count: usize,
        /// Gap between requests (must exceed the platform keep-alive).
        gap: SimDuration,
    },
    /// Poisson arrivals at `rate_per_sec` for `duration`.
    Poisson {
        /// Mean arrival rate, requests/second.
        rate_per_sec: f64,
        /// Length of the generated stream.
        duration: SimDuration,
    },
    /// `count` requests with a fixed `gap` (mostly warm once started).
    ClosedLoop {
        /// Number of requests.
        count: usize,
        /// Fixed inter-arrival gap.
        gap: SimDuration,
    },
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Handler mix.
    pub handlers: Vec<HandlerMix>,
    /// Arrival process.
    pub arrival: ArrivalProcess,
}

impl WorkloadSpec {
    /// A cold-start series spread uniformly over the application's handlers.
    pub fn uniform_cold_starts(app: &Application, count: usize) -> WorkloadSpec {
        WorkloadSpec {
            handlers: app
                .handlers()
                .iter()
                .map(|h| HandlerMix {
                    name: h.name().to_string(),
                    weight: 1.0,
                })
                .collect(),
            arrival: ArrivalProcess::ColdStartSeries {
                count,
                gap: SimDuration::from_mins(11),
            },
        }
    }

    /// A cold-start series with an explicit `(name, weight)` mix — the form
    /// the catalog's `workload_weights` produce.
    pub fn cold_starts_with_mix(mix: &[(String, f64)], count: usize) -> WorkloadSpec {
        WorkloadSpec {
            handlers: mix
                .iter()
                .map(|(name, weight)| HandlerMix {
                    name: name.clone(),
                    weight: *weight,
                })
                .collect(),
            arrival: ArrivalProcess::ColdStartSeries {
                count,
                gap: SimDuration::from_mins(11),
            },
        }
    }

    /// A closed-loop (mostly warm) stream with the given mix, used by the
    /// profiler-overhead study (500 requests against warm containers).
    pub fn closed_loop_with_mix(
        mix: &[(String, f64)],
        count: usize,
        gap: SimDuration,
    ) -> WorkloadSpec {
        WorkloadSpec {
            handlers: mix
                .iter()
                .map(|(name, weight)| HandlerMix {
                    name: name.clone(),
                    weight: *weight,
                })
                .collect(),
            arrival: ArrivalProcess::ClosedLoop { count, gap },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        let g = b.add_function("other", m, 9, vec![]);
        b.add_handler("main", f);
        b.add_handler("other", g);
        b.finish().unwrap()
    }

    #[test]
    fn uniform_covers_all_handlers() {
        let spec = WorkloadSpec::uniform_cold_starts(&app(), 10);
        assert_eq!(spec.handlers.len(), 2);
        assert!(spec.handlers.iter().all(|h| h.weight == 1.0));
        assert!(matches!(
            spec.arrival,
            ArrivalProcess::ColdStartSeries { count: 10, .. }
        ));
    }

    #[test]
    fn mix_constructor_preserves_weights() {
        let mix = vec![("main".to_string(), 0.9), ("other".to_string(), 0.1)];
        let spec = WorkloadSpec::cold_starts_with_mix(&mix, 5);
        assert_eq!(spec.handlers[0].weight, 0.9);
        assert_eq!(spec.handlers[1].name, "other");
    }

    #[test]
    fn closed_loop_constructor() {
        let mix = vec![("main".to_string(), 1.0)];
        let spec = WorkloadSpec::closed_loop_with_mix(&mix, 7, SimDuration::from_millis(100));
        assert!(matches!(
            spec.arrival,
            ArrivalProcess::ClosedLoop { count: 7, .. }
        ));
    }
}
