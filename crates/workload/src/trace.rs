//! Synthetic production trace, calibrated to the paper's §II-C statistics.
//!
//! The paper studies Azure production traces (its reference 4) covering 119
//! applications over two weeks and reports (Fig. 3):
//!
//! 1. 54 % of applications have more than one entry function;
//! 2. the top few handlers account for over 80 % of cumulative invocations.
//!
//! Fig. 10 additionally shows workload *shift* episodes around hours 144 and
//! 228 where many applications' entry-point mixes change at once. The
//! generator below reproduces those distributional properties
//! deterministically from a seed; the adaptive-profiling experiments consume
//! the resulting per-window invocation counts.

use slimstart_simcore::dist::Zipf;
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::SimDuration;

/// Configuration of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of applications (paper: 119).
    pub apps: usize,
    /// Trace length in days (paper: 14).
    pub days: usize,
    /// Aggregation window (paper: 12 hours).
    pub window: SimDuration,
    /// Probability an app has a single entry point (paper: 46 %).
    pub single_handler_prob: f64,
    /// Zipf exponent of per-app handler popularity.
    pub popularity_skew: f64,
    /// Hours at which global workload-shift episodes occur.
    pub shift_hours: [u64; 2],
    /// Fraction of apps whose mix changes during a shift episode.
    pub shift_fraction: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            apps: 119,
            days: 14,
            window: SimDuration::from_hours(12),
            single_handler_prob: 0.46,
            popularity_skew: 1.6,
            shift_hours: [144, 228],
            shift_fraction: 0.55,
        }
    }
}

/// One traced application: its entry points and per-window invocation
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceApp {
    /// Number of entry functions.
    pub handler_count: usize,
    /// Per-window, per-handler invocation counts:
    /// `counts[window][handler]`.
    pub counts: Vec<Vec<u64>>,
}

impl TraceApp {
    /// Total invocations per handler across the whole trace.
    pub fn totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.handler_count];
        for window in &self.counts {
            for (t, c) in totals.iter_mut().zip(window) {
                *t += c;
            }
        }
        totals
    }

    /// Invocation probabilities `p_i(t)` for window `t` (Eq. 5). Returns
    /// `None` if the window saw no invocations.
    pub fn probabilities(&self, window: usize) -> Option<Vec<f64>> {
        let counts = self.counts.get(window)?;
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        Some(counts.iter().map(|c| *c as f64 / total as f64).collect())
    }

    /// Aggregate probability change `Σ_i |Δp_i(t)|` between windows `t-1`
    /// and `t` (Eqs. 6–7). Returns 0 when either window is empty.
    pub fn delta_p(&self, window: usize) -> f64 {
        if window == 0 {
            return 0.0;
        }
        match (self.probabilities(window - 1), self.probabilities(window)) {
            (Some(prev), Some(cur)) => prev.iter().zip(&cur).map(|(a, b)| (a - b).abs()).sum(),
            _ => 0.0,
        }
    }
}

/// The synthesized production trace.
///
/// # Example
///
/// ```
/// use slimstart_workload::trace::{ProductionTrace, TraceConfig};
///
/// let trace = ProductionTrace::generate(TraceConfig::default(), 2026);
/// assert_eq!(trace.apps().len(), 119);
/// // Observation 3: a majority of apps expose more than one entry point…
/// assert!(trace.multi_handler_fraction() > 0.45);
/// // …and the top handlers dominate invocations.
/// assert!(trace.invocation_cdf_by_rank()[2] > 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionTrace {
    config: TraceConfig,
    apps: Vec<TraceApp>,
}

impl ProductionTrace {
    /// Generates a trace deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (zero apps, days or window).
    pub fn generate(config: TraceConfig, seed: u64) -> Self {
        assert!(
            config.apps > 0 && config.days > 0,
            "degenerate trace config"
        );
        assert!(!config.window.is_zero(), "window must be positive");
        let mut rng = SimRng::seed_from(seed);
        let windows_total =
            (config.days as u64 * 24 * 3_600_000_000 / config.window.as_micros()) as usize;
        let shift_windows: Vec<usize> = config
            .shift_hours
            .iter()
            .map(|h| (h * 3_600_000_000 / config.window.as_micros()) as usize)
            .collect();

        let mut apps = Vec::with_capacity(config.apps);
        for _ in 0..config.apps {
            let handler_count = if rng.chance(config.single_handler_prob) {
                1
            } else {
                // 2..=20, skewed toward small counts.
                2 + Zipf::new(19, 1.2).expect("valid").sample(&mut rng)
            };
            let zipf = Zipf::new(handler_count, config.popularity_skew).expect("valid");
            let mut weights = zipf.weights();
            // Per-app request volume (requests per window), heavy-tailed.
            let volume = 2_000.0 * (1.0 + rng.next_f64() * 40.0);
            let drifts_in_shifts = rng.chance(config.shift_fraction);
            let noisy = rng.chance(0.05); // a few apps drift continuously

            let mut counts = Vec::with_capacity(windows_total);
            for w in 0..windows_total {
                if drifts_in_shifts && shift_windows.contains(&w) {
                    // Episode: rotate popularity (a different handler
                    // becomes dominant).
                    weights.rotate_right(1);
                }
                if noisy && w % 3 == 0 {
                    rng.shuffle(&mut weights);
                }
                let window_counts: Vec<u64> = weights
                    .iter()
                    .map(|p| {
                        // Small multiplicative noise keeps Δp above zero
                        // even for stable apps.
                        let noise = 0.9995 + 0.001 * rng.next_f64();
                        (volume * p * noise).round() as u64
                    })
                    .collect();
                counts.push(window_counts);
            }
            apps.push(TraceApp {
                handler_count,
                counts,
            });
        }
        ProductionTrace { config, apps }
    }

    /// The configuration used.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The traced applications.
    pub fn apps(&self) -> &[TraceApp] {
        &self.apps
    }

    /// Number of aggregation windows.
    pub fn window_count(&self) -> usize {
        self.apps.first().map_or(0, |a| a.counts.len())
    }

    /// Fig. 3(1): the PDF of applications by handler count, as
    /// `(handler_count, fraction_of_apps)` pairs in ascending count order.
    pub fn handler_count_pdf(&self) -> Vec<(usize, f64)> {
        let max = self.apps.iter().map(|a| a.handler_count).max().unwrap_or(0);
        let mut counts = vec![0usize; max + 1];
        for app in &self.apps {
            counts[app.handler_count] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|(_, c)| *c > 0)
            .map(|(k, c)| (k, c as f64 / self.apps.len() as f64))
            .collect()
    }

    /// Fraction of applications with more than one entry function
    /// (paper: 54 %).
    pub fn multi_handler_fraction(&self) -> f64 {
        self.apps.iter().filter(|a| a.handler_count > 1).count() as f64 / self.apps.len() as f64
    }

    /// Fig. 3(2): the mean CDF of invocations by handler rank. Element `k`
    /// is the average (over apps) cumulative share of the `k+1` most-invoked
    /// handlers.
    pub fn invocation_cdf_by_rank(&self) -> Vec<f64> {
        let max_rank = self.apps.iter().map(|a| a.handler_count).max().unwrap_or(0);
        let mut acc = vec![0.0f64; max_rank];
        for app in &self.apps {
            let mut totals = app.totals();
            totals.sort_unstable_by(|a, b| b.cmp(a));
            let total: u64 = totals.iter().sum();
            let mut cum = 0.0;
            for (rank, slot) in acc.iter_mut().enumerate() {
                if total > 0 {
                    if let Some(c) = totals.get(rank) {
                        cum += *c as f64 / total as f64;
                    }
                }
                *slot += cum.min(1.0);
            }
        }
        acc.iter().map(|v| v / self.apps.len() as f64).collect()
    }

    /// Fig. 10: per window, the mean `Σ|Δp_i(t)|` across apps and the
    /// fraction of apps exceeding `epsilon`.
    pub fn delta_p_timeline(&self, epsilon: f64) -> Vec<(f64, f64)> {
        let windows = self.window_count();
        (0..windows)
            .map(|w| {
                let deltas: Vec<f64> = self.apps.iter().map(|a| a.delta_p(w)).collect();
                let mean = deltas.iter().sum::<f64>() / deltas.len().max(1) as f64;
                let exceeding =
                    deltas.iter().filter(|d| **d > epsilon).count() as f64 / deltas.len() as f64;
                (mean, exceeding)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ProductionTrace {
        ProductionTrace::generate(TraceConfig::default(), 2026)
    }

    #[test]
    fn dimensions_match_config() {
        let t = trace();
        assert_eq!(t.apps().len(), 119);
        assert_eq!(t.window_count(), 28); // 14 days / 12 h
    }

    #[test]
    fn multi_handler_fraction_near_54_pct() {
        let f = trace().multi_handler_fraction();
        assert!((0.44..0.64).contains(&f), "fraction = {f}");
    }

    #[test]
    fn handler_count_pdf_sums_to_one() {
        let pdf = trace().handler_count_pdf();
        let total: f64 = pdf.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pdf.iter().all(|(k, _)| (1..=21).contains(k)));
    }

    #[test]
    fn top_handlers_dominate_invocations() {
        let cdf = trace().invocation_cdf_by_rank();
        // Paper: the top few handlers account for over 80 % of invocations.
        assert!(cdf[0] > 0.6, "top-1 share = {}", cdf[0]);
        assert!(
            cdf[2.min(cdf.len() - 1)] > 0.8,
            "top-3 share = {:?}",
            &cdf[..3]
        );
        // CDF is monotone and bounded.
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(cdf.last().is_some_and(|v| (*v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn shift_windows_spike_delta_p() {
        let t = trace();
        let timeline = t.delta_p_timeline(0.002);
        // Windows at hours 144 and 228 → indices 12 and 19.
        let spike_a = timeline[12].1;
        let spike_b = timeline[19].1;
        let stable: f64 = timeline
            .iter()
            .enumerate()
            .filter(|(i, _)| ![0, 12, 19].contains(i))
            .map(|(_, (_, frac))| *frac)
            .sum::<f64>()
            / (timeline.len() - 3) as f64;
        assert!(spike_a > stable + 0.1, "spike {spike_a} vs stable {stable}");
        assert!(spike_b > stable + 0.1);
    }

    #[test]
    fn delta_p_is_zero_for_first_window() {
        let t = trace();
        for app in t.apps() {
            assert_eq!(app.delta_p(0), 0.0);
        }
    }

    #[test]
    fn probabilities_normalize() {
        let t = trace();
        let app = &t.apps()[0];
        let p = app.probabilities(1).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ProductionTrace::generate(TraceConfig::default(), 5);
        let b = ProductionTrace::generate(TraceConfig::default(), 5);
        assert_eq!(a, b);
        let c = ProductionTrace::generate(TraceConfig::default(), 6);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_apps() {
        let cfg = TraceConfig {
            apps: 0,
            ..TraceConfig::default()
        };
        ProductionTrace::generate(cfg, 1);
    }
}
