//! Deterministic invocation-stream generation.

use std::fmt;

use slimstart_appmodel::Application;
use slimstart_platform::invocation::Invocation;
use slimstart_simcore::dist::{Empirical, Exponential};
use slimstart_simcore::event::EventQueue;
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::{SimDuration, SimTime};

use crate::spec::{ArrivalProcess, WorkloadSpec};

/// Errors raised while resolving a workload against an application.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The spec referenced a handler the application does not declare.
    UnknownHandler(String),
    /// No handler in the spec has positive weight.
    AllWeightsZero,
    /// The arrival process parameters are invalid.
    InvalidArrival(&'static str),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::UnknownHandler(name) => {
                write!(f, "workload references unknown handler `{name}`")
            }
            WorkloadError::AllWeightsZero => {
                write!(f, "workload has no handler with positive weight")
            }
            WorkloadError::InvalidArrival(what) => write!(f, "invalid arrival process: {what}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Generates the invocation stream for `spec` against `app`, deterministic
/// in `seed`. The result is sorted by arrival time.
///
/// # Errors
///
/// Returns an error if the spec references unknown handlers, has no positive
/// weight, or has invalid arrival parameters.
pub fn generate(
    spec: &WorkloadSpec,
    app: &Application,
    seed: u64,
) -> Result<Vec<Invocation>, WorkloadError> {
    let mut rng = SimRng::seed_from(seed);
    let handler_ids: Vec<_> = spec
        .handlers
        .iter()
        .map(|h| {
            app.handler_by_name(&h.name)
                .ok_or_else(|| WorkloadError::UnknownHandler(h.name.clone()))
        })
        .collect::<Result<_, _>>()?;
    let weights: Vec<f64> = spec.handlers.iter().map(|h| h.weight).collect();
    if weights.iter().all(|w| *w <= 0.0) {
        return Err(WorkloadError::AllWeightsZero);
    }
    let mix =
        Empirical::new(&weights).map_err(|_| WorkloadError::InvalidArrival("handler weights"))?;

    let arrivals = arrival_times(&spec.arrival, &mut rng)?;
    Ok(arrivals
        .into_iter()
        .map(|at| Invocation {
            at,
            handler: handler_ids[mix.sample(&mut rng)],
            seed: rng.next_u64(),
        })
        .collect())
}

fn arrival_times(
    arrival: &ArrivalProcess,
    rng: &mut SimRng,
) -> Result<Vec<SimTime>, WorkloadError> {
    match *arrival {
        ArrivalProcess::ColdStartSeries { count, gap } => {
            if gap.is_zero() {
                return Err(WorkloadError::InvalidArrival(
                    "cold-start gap must be positive",
                ));
            }
            Ok((0..count).map(|i| SimTime::ZERO + gap * i as u64).collect())
        }
        ArrivalProcess::ClosedLoop { count, gap } => {
            Ok((0..count).map(|i| SimTime::ZERO + gap * i as u64).collect())
        }
        ArrivalProcess::Poisson {
            rate_per_sec,
            duration,
        } => {
            if !(rate_per_sec.is_finite() && rate_per_sec > 0.0) {
                return Err(WorkloadError::InvalidArrival(
                    "Poisson rate must be positive",
                ));
            }
            let exp = Exponential::new(1.0 / rate_per_sec)
                .map_err(|_| WorkloadError::InvalidArrival("Poisson rate"))?;
            let mut t = SimTime::ZERO;
            let mut out = Vec::new();
            loop {
                t += SimDuration::from_secs_f64(exp.sample(rng));
                if t.since(SimTime::ZERO) > duration {
                    break;
                }
                out.push(t);
            }
            Ok(out)
        }
    }
}

/// Merges several invocation streams into one, ordered by arrival time with
/// deterministic FIFO tie-breaking (stream order, then position) — used to
/// compose independent workload sources (e.g. a steady API mix plus a cron
/// burst) into one platform run.
pub fn merge_streams(streams: Vec<Vec<Invocation>>) -> Vec<Invocation> {
    let mut queue = EventQueue::new();
    for stream in streams {
        for inv in stream {
            queue.schedule(inv.at, inv);
        }
    }
    let mut out = Vec::new();
    while let Some((_, inv)) = queue.pop() {
        out.push(inv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HandlerMix;
    use slimstart_appmodel::app::AppBuilder;

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        let g = b.add_function("admin", m, 9, vec![]);
        b.add_handler("main", f);
        b.add_handler("admin", g);
        b.finish().unwrap()
    }

    fn mix(main: f64, admin: f64) -> Vec<HandlerMix> {
        vec![
            HandlerMix {
                name: "main".into(),
                weight: main,
            },
            HandlerMix {
                name: "admin".into(),
                weight: admin,
            },
        ]
    }

    #[test]
    fn cold_start_series_spacing() {
        let spec = WorkloadSpec {
            handlers: mix(1.0, 0.0),
            arrival: ArrivalProcess::ColdStartSeries {
                count: 5,
                gap: SimDuration::from_mins(11),
            },
        };
        let invs = generate(&spec, &app(), 1).unwrap();
        assert_eq!(invs.len(), 5);
        for w in invs.windows(2) {
            assert_eq!(w[1].at.since(w[0].at), SimDuration::from_mins(11));
        }
    }

    #[test]
    fn zero_weight_handler_never_selected() {
        let spec = WorkloadSpec {
            handlers: mix(1.0, 0.0),
            arrival: ArrivalProcess::ClosedLoop {
                count: 500,
                gap: SimDuration::from_millis(10),
            },
        };
        let app = app();
        let admin = app.handler_by_name("admin").unwrap();
        let invs = generate(&spec, &app, 3).unwrap();
        assert!(invs.iter().all(|i| i.handler != admin));
    }

    #[test]
    fn weights_are_respected() {
        let spec = WorkloadSpec {
            handlers: mix(0.9, 0.1),
            arrival: ArrivalProcess::ClosedLoop {
                count: 5_000,
                gap: SimDuration::from_millis(1),
            },
        };
        let app = app();
        let main = app.handler_by_name("main").unwrap();
        let invs = generate(&spec, &app, 3).unwrap();
        let main_count = invs.iter().filter(|i| i.handler == main).count();
        assert!((4_300..4_700).contains(&main_count), "{main_count}");
    }

    #[test]
    fn poisson_rate_is_roughly_matched() {
        let spec = WorkloadSpec {
            handlers: mix(1.0, 0.0),
            arrival: ArrivalProcess::Poisson {
                rate_per_sec: 50.0,
                duration: SimDuration::from_secs(100),
            },
        };
        let invs = generate(&spec, &app(), 9).unwrap();
        assert!((4_200..5_800).contains(&invs.len()), "{}", invs.len());
        assert!(invs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn unknown_handler_errors() {
        let spec = WorkloadSpec {
            handlers: vec![HandlerMix {
                name: "nope".into(),
                weight: 1.0,
            }],
            arrival: ArrivalProcess::ClosedLoop {
                count: 1,
                gap: SimDuration::from_millis(1),
            },
        };
        assert!(matches!(
            generate(&spec, &app(), 1),
            Err(WorkloadError::UnknownHandler(_))
        ));
    }

    #[test]
    fn all_zero_weights_error() {
        let spec = WorkloadSpec {
            handlers: mix(0.0, 0.0),
            arrival: ArrivalProcess::ClosedLoop {
                count: 1,
                gap: SimDuration::from_millis(1),
            },
        };
        assert_eq!(
            generate(&spec, &app(), 1),
            Err(WorkloadError::AllWeightsZero)
        );
    }

    #[test]
    fn zero_gap_cold_series_rejected() {
        let spec = WorkloadSpec {
            handlers: mix(1.0, 0.0),
            arrival: ArrivalProcess::ColdStartSeries {
                count: 3,
                gap: SimDuration::ZERO,
            },
        };
        assert!(matches!(
            generate(&spec, &app(), 1),
            Err(WorkloadError::InvalidArrival(_))
        ));
    }

    #[test]
    fn merge_streams_orders_and_breaks_ties_fifo() {
        use slimstart_appmodel::HandlerId;
        let inv = |ms: u64, seed: u64| Invocation {
            at: SimTime::ZERO + SimDuration::from_millis(ms),
            handler: HandlerId::from_index(0),
            seed,
        };
        let a = vec![inv(1, 10), inv(5, 11)];
        let b = vec![inv(1, 20), inv(3, 21)];
        let merged = merge_streams(vec![a, b]);
        let order: Vec<u64> = merged.iter().map(|i| i.seed).collect();
        // Time order; at t=1 stream a's entry came first (FIFO).
        assert_eq!(order, vec![10, 20, 21, 11]);
        assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn merge_of_empty_streams_is_empty() {
        assert!(merge_streams(vec![]).is_empty());
        assert!(merge_streams(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = WorkloadSpec {
            handlers: mix(0.7, 0.3),
            arrival: ArrivalProcess::Poisson {
                rate_per_sec: 10.0,
                duration: SimDuration::from_secs(10),
            },
        };
        let a = generate(&spec, &app(), 5).unwrap();
        let b = generate(&spec, &app(), 5).unwrap();
        assert_eq!(a, b);
        let c = generate(&spec, &app(), 6).unwrap();
        assert_ne!(a, c);
    }
}
