//! Time-varying workloads: handler mixes that shift over time.
//!
//! The paper's adaptive mechanism (§IV-C) exists because production
//! workloads drift: the entry-point mix at deployment time is not the mix a
//! week later. A [`DriftSchedule`] generates an invocation stream whose
//! handler weights change at scheduled episodes, which is what the adaptive
//! experiments and the CI/CD example feed to SlimStart.

use std::fmt;

use slimstart_appmodel::Application;
use slimstart_platform::invocation::Invocation;
use slimstart_simcore::dist::Empirical;
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::{SimDuration, SimTime};

use crate::generator::WorkloadError;

/// One change of the handler mix.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEpisode {
    /// When the new mix takes effect.
    pub at: SimTime,
    /// New weights, one per handler named in the schedule.
    pub weights: Vec<f64>,
}

/// A piecewise-constant handler mix over time.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSchedule {
    /// Handler names the weight vectors refer to.
    pub handlers: Vec<String>,
    /// Initial weights.
    pub initial_weights: Vec<f64>,
    /// Mix changes, sorted by time.
    pub episodes: Vec<DriftEpisode>,
}

impl fmt::Display for DriftSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drift schedule over {} handlers with {} episode(s)",
            self.handlers.len(),
            self.episodes.len()
        )
    }
}

impl DriftSchedule {
    /// Creates a schedule with no drift.
    ///
    /// # Panics
    ///
    /// Panics if `handlers` and `weights` differ in length.
    pub fn constant(handlers: Vec<String>, weights: Vec<f64>) -> Self {
        assert_eq!(
            handlers.len(),
            weights.len(),
            "one weight per handler required"
        );
        DriftSchedule {
            handlers,
            initial_weights: weights,
            episodes: Vec::new(),
        }
    }

    /// Adds an episode; episodes must be added in time order.
    ///
    /// # Panics
    ///
    /// Panics if `weights` has the wrong arity or `at` precedes the previous
    /// episode.
    pub fn with_episode(mut self, at: SimTime, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            self.handlers.len(),
            "one weight per handler required"
        );
        if let Some(last) = self.episodes.last() {
            assert!(at >= last.at, "episodes must be in time order");
        }
        self.episodes.push(DriftEpisode { at, weights });
        self
    }

    /// The weights in effect at `t`.
    pub fn weights_at(&self, t: SimTime) -> &[f64] {
        let mut current = &self.initial_weights;
        for ep in &self.episodes {
            if ep.at <= t {
                current = &ep.weights;
            } else {
                break;
            }
        }
        current
    }

    /// Generates a closed-loop invocation stream of `count` requests spaced
    /// `gap` apart, with the handler drawn from the mix in effect at each
    /// arrival.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown handlers or degenerate weights.
    pub fn generate(
        &self,
        app: &Application,
        count: usize,
        gap: SimDuration,
        seed: u64,
    ) -> Result<Vec<Invocation>, WorkloadError> {
        let mut rng = SimRng::seed_from(seed);
        let ids: Vec<_> = self
            .handlers
            .iter()
            .map(|name| {
                app.handler_by_name(name)
                    .ok_or_else(|| WorkloadError::UnknownHandler(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let at = SimTime::ZERO + gap * i as u64;
            let weights = self.weights_at(at);
            if weights.iter().all(|w| *w <= 0.0) {
                return Err(WorkloadError::AllWeightsZero);
            }
            let mix = Empirical::new(weights)
                .map_err(|_| WorkloadError::InvalidArrival("drift weights"))?;
            out.push(Invocation {
                at,
                handler: ids[mix.sample(&mut rng)],
                seed: rng.next_u64(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        let g = b.add_function("admin", m, 9, vec![]);
        b.add_handler("main", f);
        b.add_handler("admin", g);
        b.finish().unwrap()
    }

    fn schedule() -> DriftSchedule {
        DriftSchedule::constant(vec!["main".into(), "admin".into()], vec![1.0, 0.0])
            .with_episode(SimTime::from_secs(50), vec![0.0, 1.0])
    }

    #[test]
    fn weights_switch_at_episode() {
        let s = schedule();
        assert_eq!(s.weights_at(SimTime::ZERO), &[1.0, 0.0]);
        assert_eq!(s.weights_at(SimTime::from_secs(49)), &[1.0, 0.0]);
        assert_eq!(s.weights_at(SimTime::from_secs(50)), &[0.0, 1.0]);
    }

    #[test]
    fn generated_stream_reflects_drift() {
        let app = app();
        let s = schedule();
        let invs = s.generate(&app, 100, SimDuration::from_secs(1), 7).unwrap();
        let main = app.handler_by_name("main").unwrap();
        let admin = app.handler_by_name("admin").unwrap();
        // First 50 requests hit main, rest hit admin.
        assert!(invs[..50].iter().all(|i| i.handler == main));
        assert!(invs[50..].iter().all(|i| i.handler == admin));
    }

    #[test]
    fn constant_schedule_never_changes() {
        let s = DriftSchedule::constant(vec!["main".into()], vec![1.0]);
        assert_eq!(s.weights_at(SimTime::from_secs(1_000_000)), &[1.0]);
        assert_eq!(s.episodes.len(), 0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_episodes_panic() {
        DriftSchedule::constant(vec!["main".into()], vec![1.0])
            .with_episode(SimTime::from_secs(10), vec![0.5])
            .with_episode(SimTime::from_secs(5), vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "one weight per handler")]
    fn arity_mismatch_panics() {
        DriftSchedule::constant(vec!["main".into()], vec![1.0, 2.0]);
    }

    #[test]
    fn unknown_handler_in_schedule_errors() {
        let s = DriftSchedule::constant(vec!["nope".into()], vec![1.0]);
        assert!(matches!(
            s.generate(&app(), 1, SimDuration::from_secs(1), 1),
            Err(WorkloadError::UnknownHandler(_))
        ));
    }

    #[test]
    fn display_is_informative() {
        assert!(schedule().to_string().contains("1 episode"));
    }
}
