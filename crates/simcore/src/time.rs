//! Virtual time: instants and durations with microsecond resolution.
//!
//! The simulator never consults the wall clock. All latencies reported by the
//! platform are sums of [`SimDuration`] values accumulated on a virtual
//! [`SimTime`] axis, which keeps every experiment deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the virtual time axis, in microseconds since simulation
/// start.
///
/// # Example
///
/// ```
/// use slimstart_simcore::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds.
///
/// # Example
///
/// ```
/// use slimstart_simcore::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_millis_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self` (saturating),
    /// mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * 1_000_000)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative or non-finite input clamps to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        if !millis.is_finite() || millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((millis * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite input clamps to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// The span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64: factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio `self / other` as a float.
    ///
    /// Returns 0.0 when `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl<'a> Sum<&'a SimDuration> for SimDuration {
    fn sum<I: Iterator<Item = &'a SimDuration>>(iter: I) -> SimDuration {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d).as_micros(), 10_250);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        SimTime::from_millis(1).since(SimTime::from_millis(2));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn float_constructors_round_and_clamp() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn mul_f64_rejects_negative() {
        SimDuration::from_millis(1).mul_f64(-1.0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_millis(6)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let parts = [
            SimDuration::from_micros(1),
            SimDuration::from_micros(2),
            SimDuration::from_micros(3),
        ];
        let total: SimDuration = parts.iter().sum();
        assert_eq!(total, SimDuration::from_micros(6));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn min_max_order_correctly() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_millis(1);
        let tb = SimTime::from_millis(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
