//! String interning for hot-path name lookups.
//!
//! The simulator resolves dotted module paths, function names and handler
//! names constantly — during application building, loader ancestry
//! resolution and report rendering. Interning collapses every distinct
//! string to a dense [`Symbol`] (a `u32`), after which comparisons are a
//! word compare and map keys are fixed-width integers instead of owned
//! `String`s.
//!
//! Determinism: symbol ids are assigned in **insertion order**, never from
//! hash values, so identical inputs produce identical ids on every run and
//! on every thread count. The [`fxhash`] index only accelerates the
//! string→id lookup; it does not influence the ids themselves (and FxHash
//! is itself seedless and deterministic, so even iteration-order-dependent
//! debugging output is stable).

use std::sync::Arc;

use fxhash::FxHashMap;

/// A dense handle to an interned string. Ids are assigned in insertion
/// order starting at 0, so they double as indices into per-symbol side
/// tables (`Vec<T>` keyed by `Symbol`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw id, usable as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw id. The caller is responsible for
    /// pairing it with the interner that issued it.
    #[inline]
    pub fn from_index(index: usize) -> Symbol {
        Symbol(u32::try_from(index).expect("symbol index fits in u32"))
    }
}

/// An insertion-ordered string interner.
///
/// Each distinct string is stored once (as an `Arc<str>` shared between the
/// lookup index and the id→string table) and mapped to a dense [`Symbol`].
///
/// # Example
///
/// ```
/// use slimstart_simcore::intern::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("numpy.linalg");
/// let b = interner.intern("numpy.linalg");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "numpy.linalg");
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    index: FxHashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Creates an empty interner with room for `capacity` symbols.
    pub fn with_capacity(capacity: usize) -> Self {
        Interner {
            index: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Interns `s`, returning its symbol. The first occurrence of a string
    /// allocates once; every later occurrence is a hash lookup.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Symbol::from_index(self.strings.len());
        let stored: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&stored));
        self.index.insert(stored, sym);
        sym
    }

    /// Looks up the symbol for `s` without interning it.
    #[inline]
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).copied()
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not issued by this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Symbol, &str)` pairs in insertion (= id) order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol::from_index(i), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_insertion_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a").index(), 0);
        assert_eq!(i.intern("b").index(), 1);
        assert_eq!(i.intern("a").index(), 0);
        assert_eq!(i.intern("c").index(), 2);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names = ["numpy", "numpy.linalg", "scipy.sparse", ""];
        let syms: Vec<Symbol> = names.iter().map(|n| i.intern(n)).collect();
        for (sym, name) in syms.iter().zip(names.iter()) {
            assert_eq!(i.resolve(*sym), *name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let sym = i.intern("x");
        assert_eq!(i.get("x"), Some(sym));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn deterministic_across_instances() {
        let names = ["pkg", "pkg.a", "pkg.b", "pkg.a.inner", "other"];
        let mut first = Interner::new();
        let mut second = Interner::with_capacity(16);
        let a: Vec<Symbol> = names.iter().map(|n| first.intern(n)).collect();
        let b: Vec<Symbol> = names.iter().map(|n| second.intern(n)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut i = Interner::new();
        i.intern("one");
        i.intern("two");
        let pairs: Vec<(usize, &str)> = i.iter().map(|(s, n)| (s.index(), n)).collect();
        assert_eq!(pairs, vec![(0, "one"), (1, "two")]);
    }
}
