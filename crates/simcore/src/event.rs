//! A generic discrete-event queue keyed by virtual time.
//!
//! The platform simulator schedules container reclamations and invocation
//! arrivals as events; ties at the same instant pop in insertion order so
//! simulations are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: payload `T` due at `at`.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with seq as a
        // FIFO tie-break.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// # Example
///
/// ```
/// use slimstart_simcore::event::EventQueue;
/// use slimstart_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop().map(|(_, p)| p), Some("early"));
/// assert_eq!(q.pop().map(|(_, p)| p), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The due time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains all events due at or before `now`, earliest first.
    ///
    /// Allocates a fresh `Vec` per call; hot loops should hold a scratch
    /// buffer and use [`EventQueue::pop_due_into`] instead.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let mut due = Vec::new();
        self.pop_due_into(now, &mut due);
        due
    }

    /// Drains all events due at or before `now` into `buf`, earliest first.
    ///
    /// `buf` is cleared first, so callers can reuse one scratch buffer across
    /// calls and amortize the allocation to zero once it reaches its
    /// high-water mark. In the common no-event case this is a single
    /// heap-peek with no allocation at all.
    pub fn pop_due_into(&mut self, now: SimTime, buf: &mut Vec<(SimTime, T)>) {
        buf.clear();
        while let Some(t) = self.peek_time() {
            if t > now {
                break;
            }
            buf.push(self.pop().expect("peeked event exists"));
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 5);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_due_splits_correctly() {
        let mut q = EventQueue::new();
        for ms in [1u64, 2, 3, 4, 5] {
            q.schedule(SimTime::from_millis(ms), ms);
        }
        let due = q.pop_due(SimTime::from_millis(3));
        assert_eq!(
            due.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_due_into_reuses_buffer() {
        let mut q = EventQueue::new();
        for ms in [1u64, 2, 3] {
            q.schedule(SimTime::from_millis(ms), ms);
        }
        let mut buf = Vec::with_capacity(8);
        q.pop_due_into(SimTime::from_millis(2), &mut buf);
        assert_eq!(buf.iter().map(|(_, p)| *p).collect::<Vec<_>>(), vec![1, 2]);
        let cap = buf.capacity();
        // Stale contents are cleared, capacity is retained.
        q.pop_due_into(SimTime::from_millis(1), &mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        q.pop_due_into(SimTime::from_millis(3), &mut buf);
        assert_eq!(buf.iter().map(|(_, p)| *p).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop_due(SimTime::MAX).is_empty());
    }
}
