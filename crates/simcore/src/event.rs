//! A generic discrete-event queue keyed by virtual time.
//!
//! The platform simulator schedules container reclamations and invocation
//! arrivals as events; ties at the same instant pop in insertion order so
//! simulations are fully deterministic.
//!
//! # Implementation: hierarchical timing wheel
//!
//! [`EventQueue`] is a hierarchical timing wheel: [`LEVELS`] levels of
//! [`SLOTS`] buckets each, where a level-`L` slot spans `64^L` microseconds
//! (power-of-two bucket spans, [`BITS`] bits per level). An event lands at
//! the lowest level whose resolution still separates it from the wheel
//! cursor; events beyond the top level's horizon (~52 simulated days) wait
//! in an overflow list. Scheduling is O(1); popping finds the earliest
//! non-empty bucket with one occupancy-bitmap scan per level and cascades
//! coarse buckets down as the cursor reaches them, so each event is touched
//! at most [`LEVELS`] times over its lifetime — versus the O(log n)
//! comparisons *per operation* of the [`reference`] binary heap it
//! replaced. Ties at the same instant still pop in `seq` (insertion) order:
//! level-0 buckets resolve to a single microsecond, and draining one picks
//! the minimum `(at, seq)` entry.
//!
//! The previous `BinaryHeap` implementation is retained as
//! [`reference::ReferenceEventQueue`] — the differential-testing oracle
//! (`tests/event_wheel_differential.rs`) and the baseline the
//! `slimstart bench` `event_queue` section races.

use crate::time::SimTime;

/// Bits per wheel level: each level has `2^BITS` slots.
const BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels; level `L` slots span `2^(BITS·L)` µs, so the wheel covers
/// `2^(BITS·LEVELS)` µs (~52 days) before events fall into the overflow.
const LEVELS: usize = 7;
/// Bucket array size: `LEVELS * SLOTS` rounded up to the next power of two,
/// so a masked index provably stays in bounds and the per-placement bounds
/// check vanishes (the top 64 buckets are simply never addressed).
const BUCKETS: usize = (LEVELS * SLOTS).next_power_of_two();

/// An entry in the queue: payload `T` due at `at`.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

/// One wheel slot: FIFO of entries plus a cached minimum due time (valid
/// while the bucket is non-empty) so peeks never scan entries.
#[derive(Debug, Clone)]
struct Bucket<T> {
    entries: Vec<Entry<T>>,
    min_at: SimTime,
}

impl<T> Bucket<T> {
    fn new() -> Self {
        Bucket {
            entries: Vec::new(),
            min_at: SimTime::MAX,
        }
    }
}

/// A deterministic earliest-first event queue (hierarchical timing wheel).
///
/// # Example
///
/// ```
/// use slimstart_simcore::event::EventQueue;
/// use slimstart_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop().map(|(_, p)| p), Some("early"));
/// assert_eq!(q.pop().map(|(_, p)| p), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// [`BUCKETS`] buckets, level-major (`level·SLOTS + slot`).
    buckets: Box<[Bucket<T>; BUCKETS]>,
    /// One occupancy bit per slot, per level.
    occupancy: [u64; LEVELS],
    /// Events beyond the wheel horizon, unordered.
    overflow: Vec<Entry<T>>,
    /// Minimum due time in `overflow` (valid while non-empty).
    overflow_min: SimTime,
    /// Placement reference, µs. Invariants: never decreases, and never
    /// exceeds any pending entry's placement time — so every non-empty
    /// slot at each level sits at or beyond the cursor's index there.
    cursor: u64,
    len: usize,
    next_seq: u64,
    /// Exact global minimum due time while `cached_min_valid` — lets the
    /// hot "anything due yet?" probe skip the level scan. `SimTime::MAX`
    /// means the queue is empty.
    cached_min: SimTime,
    /// Whether `cached_min` is trustworthy; invalidated by [`EventQueue::pop`],
    /// restored by the next full scan.
    cached_min_valid: bool,
    /// Capacity reservoir rotated through cascades: the emptied bucket
    /// swaps its allocation in here instead of dropping it, so steady-state
    /// cascading performs no heap traffic.
    spare: Vec<Entry<T>>,
    /// Scratch for [`EventQueue::pop_due_into`]'s batch collection; kept on
    /// the queue so repeated drains reuse one allocation.
    due_scratch: Vec<Entry<T>>,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let buckets: Vec<Bucket<T>> = (0..BUCKETS).map(|_| Bucket::new()).collect();
        let buckets = match <Box<[Bucket<T>; BUCKETS]>>::try_from(buckets.into_boxed_slice()) {
            Ok(array) => array,
            Err(_) => unreachable!("constructed with exactly BUCKETS elements"),
        };
        EventQueue {
            buckets,
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: SimTime::MAX,
            cursor: 0,
            len: 0,
            next_seq: 0,
            cached_min: SimTime::MAX,
            cached_min_valid: true,
            spare: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // A valid cached minimum stays exact under insertion.
        self.cached_min = self.cached_min.min(at);
        self.place(Entry { at, seq, payload });
        self.len += 1;
    }

    /// Inserts an entry at the level/slot implied by the current cursor.
    /// Due times in the past (before the cursor) are placed at the cursor
    /// itself; ordering still uses the entry's true `at`.
    fn place(&mut self, entry: Entry<T>) {
        let t = entry.at.as_micros().max(self.cursor);
        let diff = t ^ self.cursor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        };
        if level >= LEVELS {
            if entry.at < self.overflow_min {
                self.overflow_min = entry.at;
            }
            self.overflow.push(entry);
            return;
        }
        let slot = ((t >> (BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let bucket = &mut self.buckets[(level * SLOTS + slot) & (BUCKETS - 1)];
        if bucket.entries.is_empty() || entry.at < bucket.min_at {
            bucket.min_at = entry.at;
        }
        bucket.entries.push(entry);
        self.occupancy[level] |= 1u64 << slot;
    }

    /// The `(level, slot, min_at)` of the bucket holding the earliest
    /// pending event; `level == LEVELS` designates the overflow list.
    ///
    /// Bucket time ranges are pairwise disjoint and *nested by level*:
    /// every level-`L` entry shares the cursor's level-`L+1` window (its
    /// address differs from the cursor only below bit `6·(L+1)`), while an
    /// occupied level-`L+1` slot differs from the cursor's — an entry in
    /// the cursor's own slot would have been placed at a finer level — so
    /// it sits in a strictly later window. The first occupied level from
    /// the bottom therefore holds the global minimum, and overflow entries
    /// (beyond the horizon) are later than everything in the wheel.
    fn best_bucket(&self) -> Option<(usize, usize, SimTime)> {
        for level in 0..LEVELS {
            let occ = self.occupancy[level];
            if occ != 0 {
                // Within a level, slot ranges are disjoint and increasing,
                // so the lowest occupied slot is the earliest.
                let slot = occ.trailing_zeros() as usize;
                let min_at = self.buckets[(level * SLOTS + slot) & (BUCKETS - 1)].min_at;
                return Some((level, slot, min_at));
            }
        }
        if !self.overflow.is_empty() {
            return Some((LEVELS, 0, self.overflow_min));
        }
        None
    }

    /// The first instant covered by `slot` at `level`, relative to the
    /// cursor's position.
    fn bucket_start(&self, level: usize, slot: usize) -> u64 {
        let shift = BITS * level as u32;
        let window = !((1u64 << (shift + BITS)) - 1);
        (self.cursor & window) | ((slot as u64) << shift)
    }

    /// The overflow holds the global minimum: advance the cursor to it and
    /// pull every overflow event that now fits the wheel horizon back in
    /// (the minimum itself always does; the rest may spill right back).
    fn rescue_overflow(&mut self) {
        self.cursor = self.cursor.max(self.overflow_min.as_micros());
        let mut entries = std::mem::replace(&mut self.overflow, std::mem::take(&mut self.spare));
        self.overflow_min = SimTime::MAX;
        for e in entries.drain(..) {
            self.place(e);
        }
        self.spare = entries;
    }

    /// Cascades a coarse bucket's entries to finer levels (each lands
    /// strictly below `level` relative to the already-advanced cursor). The
    /// bucket's allocation rotates through `spare` instead of being freed.
    fn cascade(&mut self, level: usize, slot: usize) {
        debug_assert!(level > 0);
        let bucket = &mut self.buckets[(level * SLOTS + slot) & (BUCKETS - 1)];
        let mut entries = std::mem::replace(&mut bucket.entries, std::mem::take(&mut self.spare));
        bucket.min_at = SimTime::MAX;
        self.occupancy[level] &= !(1u64 << slot);
        for e in entries.drain(..) {
            self.place(e);
        }
        self.spare = entries;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        loop {
            let Some((level, slot, _)) = self.best_bucket() else {
                self.cached_min = SimTime::MAX;
                self.cached_min_valid = true;
                return None;
            };

            if level == LEVELS {
                self.rescue_overflow();
                continue;
            }

            let start = self.bucket_start(level, slot);
            self.cursor = self.cursor.max(start);

            if level > 0 {
                self.cascade(level, slot);
                continue;
            }

            // Level-0 bucket: one microsecond of span, so every entry is a
            // tie except past-due events clamped to the cursor slot — pick
            // the minimum (at, seq).
            let bucket = &mut self.buckets[slot & (BUCKETS - 1)];
            let mut pick = 0;
            for (i, e) in bucket.entries.iter().enumerate().skip(1) {
                let best = &bucket.entries[pick];
                if (e.at, e.seq) < (best.at, best.seq) {
                    pick = i;
                }
            }
            let entry = bucket.entries.swap_remove(pick);
            if bucket.entries.is_empty() {
                bucket.min_at = SimTime::MAX;
                self.occupancy[0] &= !(1u64 << slot);
            } else {
                bucket.min_at = bucket
                    .entries
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("bucket is non-empty");
            }
            self.len -= 1;
            // The minimum just left; the next one is unknown until the next
            // scan.
            self.cached_min_valid = false;
            return Some((entry.at, entry.payload));
        }
    }

    /// The due time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.cached_min_valid {
            // `cached_min` is exact; `len` (not MAX-ness) distinguishes the
            // empty queue from an event genuinely due at `SimTime::MAX`.
            return if self.len == 0 {
                None
            } else {
                Some(self.cached_min)
            };
        }
        self.best_bucket().map(|(_, _, min_at)| min_at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drains all events due at or before `now`, earliest first.
    ///
    /// Allocates a fresh `Vec` per call; hot loops should hold a scratch
    /// buffer and use [`EventQueue::pop_due_into`] instead.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
        let mut due = Vec::new();
        self.pop_due_into(now, &mut due);
        due
    }

    /// Drains all events due at or before `now` into `buf`, earliest first.
    ///
    /// `buf` is cleared first, so callers can reuse one scratch buffer across
    /// calls and amortize the allocation to zero once it reaches its
    /// high-water mark. In the common no-event case this is a single
    /// occupancy-bitmap scan with no allocation at all.
    pub fn pop_due_into(&mut self, now: SimTime, buf: &mut Vec<(SimTime, T)>) {
        buf.clear();
        if self.cached_min_valid && (self.len == 0 || self.cached_min > now) {
            // Nothing due: one compare instead of a level scan.
            return;
        }
        let mut due = std::mem::take(&mut self.due_scratch);
        let now_us = now.as_micros();
        loop {
            let Some((level, slot, min_at)) = self.best_bucket() else {
                self.cached_min = SimTime::MAX;
                self.cached_min_valid = true;
                break;
            };
            if min_at > now {
                self.cached_min = min_at;
                self.cached_min_valid = true;
                break;
            }
            if level == LEVELS {
                self.rescue_overflow();
                continue;
            }
            let start = self.bucket_start(level, slot);
            self.cursor = self.cursor.max(start);
            let span = 1u64 << (BITS * level as u32);
            if start.saturating_add(span - 1) <= now_us {
                // The bucket's whole time span is due, so every entry in it
                // is (clamped past-due ones even more so): collect it raw,
                // skipping the cascade entirely — each event is touched
                // once here instead of once per remaining level, and the
                // (at, seq) order pop would have produced is restored by
                // the single sort below.
                let bucket = &mut self.buckets[(level * SLOTS + slot) & (BUCKETS - 1)];
                self.len -= bucket.entries.len();
                self.occupancy[level] &= !(1u64 << slot);
                bucket.min_at = SimTime::MAX;
                due.append(&mut bucket.entries);
                continue;
            }
            if level > 0 {
                // Partially-due coarse bucket: split instead of cascading
                // wholesale. Due entries exit here — touched once, never
                // cascaded — and only the not-yet-due remainder re-places
                // into finer levels.
                let bucket = &mut self.buckets[(level * SLOTS + slot) & (BUCKETS - 1)];
                let mut entries =
                    std::mem::replace(&mut bucket.entries, std::mem::take(&mut self.spare));
                bucket.min_at = SimTime::MAX;
                self.occupancy[level] &= !(1u64 << slot);
                for e in entries.drain(..) {
                    if e.at <= now {
                        self.len -= 1;
                        due.push(e);
                    } else {
                        self.place(e);
                    }
                }
                self.spare = entries;
                continue;
            }
            // A level-0 slot whose instant is beyond `now`, yet its minimum
            // is due: only past-due entries clamped into the cursor slot
            // qualify. Extract exactly those.
            let bucket = &mut self.buckets[slot & (BUCKETS - 1)];
            let mut i = 0;
            while i < bucket.entries.len() {
                if bucket.entries[i].at <= now {
                    due.push(bucket.entries.swap_remove(i));
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
            if bucket.entries.is_empty() {
                self.occupancy[0] &= !(1u64 << slot);
                bucket.min_at = SimTime::MAX;
            } else {
                bucket.min_at = bucket
                    .entries
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("bucket is non-empty");
            }
        }
        // Buckets were collected earliest-range-first, so `due` is nearly
        // sorted already; (at, seq) is a total order (seq is unique), so an
        // unstable sort reproduces pop's exact FIFO-tie sequence.
        due.sort_unstable_by_key(|e| (e.at, e.seq));
        buf.extend(due.drain(..).map(|e| (e.at, e.payload)));
        self.due_scratch = due;
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

pub mod reference {
    //! The pre-wheel `BinaryHeap` event queue, retained verbatim as the
    //! differential-testing oracle and bench baseline (the same pattern as
    //! `slimstart_core::cct::reference`).

    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    #[derive(Debug, Clone)]
    struct Entry<T> {
        at: SimTime,
        seq: u64,
        payload: T,
    }

    impl<T> PartialEq for Entry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }

    impl<T> Eq for Entry<T> {}

    impl<T> PartialOrd for Entry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<T> Ord for Entry<T> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; reverse for earliest-first, with seq
            // as a FIFO tie-break.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The heap-backed oracle with the exact [`super::EventQueue`] API.
    #[derive(Debug, Clone)]
    pub struct ReferenceEventQueue<T> {
        heap: BinaryHeap<Entry<T>>,
        next_seq: u64,
    }

    impl<T> ReferenceEventQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            ReferenceEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }

        /// Schedules `payload` at instant `at`.
        pub fn schedule(&mut self, at: SimTime, payload: T) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, payload });
        }

        /// Removes and returns the earliest event, if any.
        pub fn pop(&mut self) -> Option<(SimTime, T)> {
            self.heap.pop().map(|e| (e.at, e.payload))
        }

        /// The due time of the earliest event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.at)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Whether the queue has no pending events.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Drains all events due at or before `now`, earliest first.
        pub fn pop_due(&mut self, now: SimTime) -> Vec<(SimTime, T)> {
            let mut due = Vec::new();
            self.pop_due_into(now, &mut due);
            due
        }

        /// Drains all events due at or before `now` into `buf`, earliest
        /// first. `buf` is cleared first.
        pub fn pop_due_into(&mut self, now: SimTime, buf: &mut Vec<(SimTime, T)>) {
            buf.clear();
            while let Some(t) = self.peek_time() {
                if t > now {
                    break;
                }
                buf.push(self.pop().expect("peeked event exists"));
            }
        }
    }

    impl<T> Default for ReferenceEventQueue<T> {
        fn default() -> Self {
            ReferenceEventQueue::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceEventQueue;
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 5);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_due_splits_correctly() {
        let mut q = EventQueue::new();
        for ms in [1u64, 2, 3, 4, 5] {
            q.schedule(SimTime::from_millis(ms), ms);
        }
        let due = q.pop_due(SimTime::from_millis(3));
        assert_eq!(
            due.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_due_into_reuses_buffer() {
        let mut q = EventQueue::new();
        for ms in [1u64, 2, 3] {
            q.schedule(SimTime::from_millis(ms), ms);
        }
        let mut buf = Vec::with_capacity(8);
        q.pop_due_into(SimTime::from_millis(2), &mut buf);
        assert_eq!(buf.iter().map(|(_, p)| *p).collect::<Vec<_>>(), vec![1, 2]);
        let cap = buf.capacity();
        // Stale contents are cleared, capacity is retained.
        q.pop_due_into(SimTime::from_millis(1), &mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        q.pop_due_into(SimTime::from_millis(3), &mut buf);
        assert_eq!(buf.iter().map(|(_, p)| *p).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop_due(SimTime::MAX).is_empty());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new();
        // Beyond the 2^42 µs wheel horizon — lands in the overflow list.
        let far = SimTime::from_micros(1 << 50);
        q.schedule(far, "far");
        q.schedule(SimTime::from_millis(1), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().map(|(_, p)| p), Some("near"));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn max_instant_round_trips() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "end");
        q.schedule(SimTime::ZERO, "start");
        assert_eq!(q.pop().map(|(_, p)| p), Some("start"));
        assert_eq!(q.pop(), Some((SimTime::MAX, "end")));
    }

    #[test]
    fn past_events_pop_before_present_ones() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "t10");
        assert_eq!(q.pop().map(|(_, p)| p), Some("t10"));
        // Scheduled before the last popped instant: still pops first, in
        // (at, seq) order, exactly like the reference heap.
        q.schedule(SimTime::from_millis(12), "t12");
        q.schedule(SimTime::from_millis(5), "t5");
        q.schedule(SimTime::from_millis(7), "t7");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["t5", "t7", "t12"]);
    }

    #[test]
    fn cascades_preserve_order_across_levels() {
        let mut q = EventQueue::new();
        // Spread events across every wheel level's span.
        let times: Vec<u64> = vec![
            3,
            64,
            65,
            4_095,
            4_096,
            262_143,
            262_145,
            16_777_215,
            1_073_741_824,
            68_719_476_736,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_micros())).collect();
        let mut expected = times.clone();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    #[test]
    fn matches_reference_heap_on_random_interleavings() {
        for seed in 0..8u64 {
            let mut rng = SimRng::seed_from(0xE4E47 ^ seed);
            let mut wheel = EventQueue::new();
            let mut heap = ReferenceEventQueue::new();
            let mut base: u64 = 0;
            for _ in 0..2_000 {
                match rng.next_below(4) {
                    0 | 1 => {
                        // Mixed horizons: ties, near, far, overflow-far.
                        let at = match rng.next_below(4) {
                            0 => base,
                            1 => base + rng.next_below(1_000) as u64,
                            2 => base + rng.next_below(600_000_000) as u64,
                            _ => base + (1u64 << 43) + rng.next_below(1_000) as u64,
                        };
                        let t = SimTime::from_micros(at);
                        wheel.schedule(t, at);
                        heap.schedule(t, at);
                    }
                    2 => {
                        assert_eq!(wheel.peek_time(), heap.peek_time());
                        let (w, h) = (wheel.pop(), heap.pop());
                        assert_eq!(w, h);
                        if let Some((t, _)) = w {
                            base = base.max(t.as_micros());
                        }
                    }
                    _ => {
                        let now = SimTime::from_micros(base + rng.next_below(10_000) as u64);
                        let mut wb = Vec::new();
                        let mut hb = Vec::new();
                        wheel.pop_due_into(now, &mut wb);
                        heap.pop_due_into(now, &mut hb);
                        assert_eq!(wb, hb);
                        base = base.max(now.as_micros());
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            // Drain fully; order must agree to the last event.
            while let Some(h) = heap.pop() {
                assert_eq!(wheel.pop(), Some(h));
            }
            assert!(wheel.is_empty());
        }
    }
}
