//! # slimstart-simcore
//!
//! Deterministic simulation kernel underpinning the SlimStart reproduction.
//!
//! Everything in the SlimStart workspace runs on *virtual time* with *seeded
//! randomness* so that every experiment is exactly reproducible from a seed.
//! This crate provides the shared building blocks:
//!
//! * [`time`] — [`SimTime`] / [`SimDuration`]
//!   newtypes with microsecond resolution.
//! * [`rng`] — a splittable, seedable random-number generator,
//!   [`SimRng`].
//! * [`dist`] — the distributions used by workload and application models
//!   (Zipf, exponential, log-normal, Pareto, empirical).
//! * [`stats`] — online summaries, exact percentiles and histograms used by
//!   the metric collectors.
//! * [`event`] — a generic discrete-event queue keyed by virtual time.
//! * [`intern`] — an insertion-ordered string interner issuing dense
//!   [`Symbol`] handles for hot-path name lookups.
//!
//! # Example
//!
//! ```
//! use slimstart_simcore::rng::SimRng;
//! use slimstart_simcore::dist::Zipf;
//! use slimstart_simcore::time::SimDuration;
//!
//! let mut rng = SimRng::seed_from(42);
//! let zipf = Zipf::new(10, 1.1).expect("valid parameters");
//! let rank = zipf.sample(&mut rng);
//! assert!(rank < 10);
//! assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
//! ```

pub mod dist;
pub mod event;
pub mod intern;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Empirical, Exponential, LogNormal, Pareto, Zipf};
pub use event::EventQueue;
pub use intern::{Interner, Symbol};
pub use rng::SimRng;
pub use stats::{Histogram, Percentiles, Summary};
pub use time::{SimDuration, SimTime};
