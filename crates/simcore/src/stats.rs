//! Statistics helpers used by the metric collectors.
//!
//! The evaluation reports means, 99th percentiles, ratios and distributions
//! (PDF/CDF plots). [`Summary`] is an online (Welford) accumulator,
//! [`Percentiles`] computes exact order statistics, and [`Histogram`] bins
//! values for the figure-style outputs.

use serde::{Deserialize, Serialize};

/// Online summary statistics (count, mean, variance, min, max) using
/// Welford's algorithm.
///
/// # Example
///
/// ```
/// use slimstart_simcore::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "Summary::record: non-finite observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Exact percentile computation over a stored sample.
///
/// Stores all observations; appropriate for the experiment scales used here
/// (hundreds to tens of thousands of invocations).
///
/// # Example
///
/// ```
/// use slimstart_simcore::stats::Percentiles;
///
/// let p: Percentiles = (1..=100).map(|i| i as f64).collect();
/// assert_eq!(p.quantile(0.99), Some(99.0)); // nearest rank
/// assert_eq!(p.quantile(0.5), Some(50.0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Percentiles {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "Percentiles::record: non-finite observation");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) using the nearest-rank method.
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.clone();
        sorted.ensure_sorted();
        let n = sorted.values.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted.values[rank - 1])
    }

    /// The 99th percentile, the paper's tail-latency metric.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Read access to the recorded values (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for Percentiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Percentiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut p = Percentiles::new();
        p.extend(iter);
        p
    }
}

/// A fixed-width histogram over `[lo, hi)` used for PDF/CDF figure outputs.
///
/// Out-of-range observations clamp into the first/last bin so that mass is
/// never silently dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram requires at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "Histogram requires finite lo < hi"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (clamping into range).
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized bin densities (the figure-style PDF). Empty histogram
    /// yields all zeros.
    pub fn pdf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|c| *c as f64 / self.total as f64)
            .collect()
    }

    /// Cumulative distribution per bin (last element is 1.0 when non-empty).
    pub fn cdf(&self) -> Vec<f64> {
        let pdf = self.pdf();
        let mut acc = 0.0;
        pdf.iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect()
    }

    /// The midpoint of bin `i`, for labeling figure axes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let all: Summary = (0..100).map(|i| i as f64).collect();
        let mut left: Summary = (0..40).map(|i| i as f64).collect();
        let right: Summary = (40..100).map(|i| i as f64).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-6);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p: Percentiles = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(0.01), Some(1.0));
        assert_eq!(p.quantile(0.5), Some(50.0));
        assert_eq!(p.p99(), Some(99.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
    }

    #[test]
    fn percentiles_single_value() {
        let p: Percentiles = [42.0].into_iter().collect();
        assert_eq!(p.median(), Some(42.0));
        assert_eq!(p.p99(), Some(42.0));
        assert_eq!(p.mean(), Some(42.0));
    }

    #[test]
    fn percentiles_empty_returns_none() {
        let p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert_eq!(p.mean(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn percentiles_unsorted_input() {
        let p: Percentiles = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        assert_eq!(p.median(), Some(3.0));
        assert_eq!(p.len(), 5);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn percentiles_quantile_range_checked() {
        let p: Percentiles = [1.0].into_iter().collect();
        p.quantile(1.5);
    }

    #[test]
    fn histogram_pdf_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [1.0, 1.5, 3.0, 9.0] {
            h.record(x);
        }
        let pdf = h.pdf();
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pdf[0] - 0.5).abs() < 1e-12);
        let cdf = h.cdf();
        assert!((cdf[4] - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(5.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_pdf_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.pdf(), vec![0.0, 0.0, 0.0]);
    }
}
