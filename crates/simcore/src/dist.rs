//! Probability distributions used by the workload and application models.
//!
//! All samplers are self-contained (no `rand_distr` dependency) and draw from
//! a [`SimRng`], keeping the whole simulation deterministic from one seed.
//!
//! * [`Zipf`] — skewed handler-popularity and library-size distributions
//!   (the paper's §II-C observation that a few entry points dominate).
//! * [`Exponential`] — Poisson inter-arrival times for invocation streams.
//! * [`LogNormal`] — module initialization cost spread.
//! * [`Pareto`] — heavy-tailed module counts.
//! * [`Empirical`] — weighted discrete choice (handler selection).

use std::fmt;

use crate::rng::SimRng;

/// Error produced when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDistribution {
    what: &'static str,
}

impl InvalidDistribution {
    fn new(what: &'static str) -> Self {
        InvalidDistribution { what }
    }
}

impl fmt::Display for InvalidDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.what)
    }
}

impl std::error::Error for InvalidDistribution {}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank `k` (0-based) has probability proportional to `1 / (k+1)^s`.
/// Sampling uses the precomputed CDF with binary search, O(log n).
///
/// # Example
///
/// ```
/// use slimstart_simcore::{rng::SimRng, dist::Zipf};
///
/// let zipf = Zipf::new(100, 1.2)?;
/// let mut rng = SimRng::seed_from(1);
/// let mut counts = [0u32; 100];
/// for _ in 0..10_000 {
///     counts[zipf.sample(&mut rng)] += 1;
/// }
/// assert!(counts[0] > counts[50]); // rank 0 dominates
/// # Ok::<(), slimstart_simcore::dist::InvalidDistribution>(())
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error when `n` is zero or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Result<Self, InvalidDistribution> {
        if n == 0 {
            return Err(InvalidDistribution::new("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(InvalidDistribution::new(
                "Zipf requires a finite, non-negative exponent",
            ));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite CDF"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The normalized weights (PMF) as a vector, rank-ordered.
    pub fn weights(&self) -> Vec<f64> {
        (0..self.len()).map(|k| self.pmf(k)).collect()
    }
}

/// Exponential distribution with a given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Errors
    ///
    /// Returns an error when `mean` is not finite or not positive.
    pub fn new(mean: f64) -> Result<Self, InvalidDistribution> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(InvalidDistribution::new(
                "Exponential requires a finite, positive mean",
            ));
        }
        Ok(Exponential { mean })
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample by inverse-CDF transform.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // 1 - u avoids ln(0).
        -self.mean * (1.0 - rng.next_f64()).ln()
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu`/`sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `mu`, `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error when parameters are not finite or `sigma` is negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidDistribution> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidDistribution::new(
                "LogNormal requires finite mu and non-negative sigma",
            ));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal from the desired *median* and a shape factor.
    ///
    /// The median of a log-normal is `exp(mu)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `median` is not positive or `sigma` invalid.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, InvalidDistribution> {
        if !median.is_finite() || median <= 0.0 {
            return Err(InvalidDistribution::new(
                "LogNormal requires a positive median",
            ));
        }
        LogNormal::new(median.ln(), sigma)
    }

    /// Draws a sample via Box–Muller.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when `x_min` or `alpha` is not finite and positive.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, InvalidDistribution> {
        if !x_min.is_finite() || x_min <= 0.0 || !alpha.is_finite() || alpha <= 0.0 {
            return Err(InvalidDistribution::new(
                "Pareto requires positive, finite x_min and alpha",
            ));
        }
        Ok(Pareto { x_min, alpha })
    }

    /// Draws a sample by inverse-CDF transform. Always `>= x_min`.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.next_f64();
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// A discrete distribution over `0..n` with explicit non-negative weights.
///
/// Used for handler selection given a workload mix.
#[derive(Debug, Clone)]
pub struct Empirical {
    cdf: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from weights.
    ///
    /// Weights are normalized internally; they need not sum to one.
    ///
    /// # Errors
    ///
    /// Returns an error when `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, InvalidDistribution> {
        if weights.is_empty() {
            return Err(InvalidDistribution::new("Empirical requires weights"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(InvalidDistribution::new(
                "Empirical weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(InvalidDistribution::new(
                "Empirical weights must not all be zero",
            ));
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        Ok(Empirical { cdf })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of category `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Draws a category in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite CDF"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(4242)
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(3, -1.0).is_err());
        assert!(Zipf::new(3, f64::NAN).is_err());
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(57, 0.9).unwrap();
        let total: f64 = (0..z.len()).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(20, 1.5).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = Zipf::new(1, 2.0).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let e = Exponential::new(10.0).unwrap();
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn exponential_rejects_bad_mean() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_is_positive_and_median_tracks() {
        let ln = LogNormal::from_median(5.0, 0.5).unwrap();
        let mut r = rng();
        let mut samples: Vec<f64> = (0..9_999).map(|_| ln.sample(&mut r)).collect();
        assert!(samples.iter().all(|x| *x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 5.0).abs() < 0.5, "median = {median}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let ln = LogNormal::from_median(3.0, 0.0).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert!((ln.sample(&mut r) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let p = Pareto::new(2.0, 1.5).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(p.sample(&mut r) >= 2.0);
        }
    }

    #[test]
    fn pareto_rejects_bad_parameters() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }

    #[test]
    fn empirical_matches_weights() {
        let e = Empirical::new(&[8.0, 1.0, 1.0]).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[e.sample(&mut r)] += 1;
        }
        assert!(counts[0] > 7_000, "counts = {counts:?}");
        assert!((e.pmf(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empirical_rejects_degenerate_weights() {
        assert!(Empirical::new(&[]).is_err());
        assert!(Empirical::new(&[0.0, 0.0]).is_err());
        assert!(Empirical::new(&[1.0, -1.0]).is_err());
        assert!(Empirical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn empirical_zero_weight_category_never_sampled() {
        let e = Empirical::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut r = rng();
        for _ in 0..5_000 {
            assert_ne!(e.sample(&mut r), 1);
        }
    }

    #[test]
    fn error_type_displays() {
        let err = Zipf::new(0, 1.0).unwrap_err();
        assert!(err.to_string().contains("Zipf"));
    }
}
