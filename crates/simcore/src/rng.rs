//! Seeded, splittable randomness for deterministic simulation.
//!
//! Every stochastic decision in the workspace draws from a [`SimRng`] that is
//! ultimately derived from one experiment seed. Independent components
//! (workload generation, per-invocation branches, sampling jitter) obtain
//! *split* child generators so that adding randomness consumption in one
//! component never perturbs another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator for simulation use.
///
/// Wraps a portable PRNG seeded from a `u64`. Use [`SimRng::split`] to derive
/// statistically independent child generators for sub-components.
///
/// # Example
///
/// ```
/// use slimstart_simcore::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's state,
    /// and the parent advances by exactly one draw, so sibling splits are
    /// mutually independent and reproducible.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from(self.split_seed())
    }

    /// Derives the seed a [`SimRng::split`] child would be constructed
    /// with, advancing the parent by one draw.
    ///
    /// Useful when the consumer wants to *record* per-component seeds
    /// (e.g. the fleet orchestrator's per-app seeds) rather than hold
    /// generator instances: `SimRng::seed_from(rng.split_seed())` is
    /// identical to `rng.split()`.
    pub fn split_seed(&mut self) -> u64 {
        // Mix the drawn value so that consecutive splits land on distant
        // seeds even if the underlying stream were low-entropy.
        splitmix64(self.inner.next_u64())
    }

    /// Draws the next `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "SimRng::next_below: bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Draws a uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "SimRng::uniform: lo must not exceed hi");
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "SimRng::pick: empty slice");
        &items[self.next_below(items.len())]
    }
}

/// SplitMix64 finalizer used to decorrelate split seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from distinct seeds should differ");
    }

    #[test]
    fn split_children_are_independent_of_parent_consumption() {
        // A split taken at the same parent state is identical regardless of
        // what the child later consumes.
        let mut p1 = SimRng::seed_from(9);
        let mut p2 = SimRng::seed_from(9);
        let mut c1 = p1.split();
        let mut c2 = p2.split();
        c1.next_u64();
        c1.next_u64();
        assert_eq!(c1.next_u64(), {
            c2.next_u64();
            c2.next_u64();
            c2.next_u64()
        });
        // Parent streams stay in lockstep after the split.
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn sibling_splits_differ() {
        let mut p = SimRng::seed_from(5);
        let mut a = p.split();
        let mut b = p.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_seed_is_pure_over_seed_and_split_order() {
        // The k-th split seed is a function of (root seed, k) alone — the
        // fleet/chaos seed-assignment contract.
        let take = |seed: u64, n: usize| -> Vec<u64> {
            let mut rng = SimRng::seed_from(seed);
            (0..n).map(|_| rng.split_seed()).collect()
        };
        assert_eq!(take(2025, 8), take(2025, 8));
        // A shorter prefix is exactly the head of a longer one.
        assert_eq!(take(2025, 3), take(2025, 8)[..3].to_vec());
        assert_ne!(take(2025, 8), take(2026, 8));
    }

    #[test]
    fn split_seed_matches_split() {
        // `SimRng::seed_from(rng.split_seed())` and `rng.split()` must be
        // interchangeable (documented equivalence).
        let mut p1 = SimRng::seed_from(404);
        let mut p2 = SimRng::seed_from(404);
        let mut via_seed = SimRng::seed_from(p1.split_seed());
        let mut via_split = p2.split();
        for _ in 0..16 {
            assert_eq!(via_seed.next_u64(), via_split.next_u64());
        }
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn split_children_are_uncorrelated_with_parent_stream() {
        // Drawing from a child never perturbs the parent, and the child's
        // stream shares no prefix with the parent's continuation — so
        // enabling a chaos stream cannot shift main simulation randomness.
        let mut parent = SimRng::seed_from(88);
        let mut child = parent.split();
        let child_draws: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        let parent_draws: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        assert_ne!(child_draws, parent_draws);
        // An identically-seeded parent that never splits a child produces
        // the same continuation shifted by exactly the one split draw.
        let mut reference = SimRng::seed_from(88);
        reference.next_u64(); // the draw split_seed consumed
        let reference_draws: Vec<u64> = (0..8).map(|_| reference.next_u64()).collect();
        assert_eq!(parent_draws, reference_draws);
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = SimRng::seed_from(77);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_probability_is_roughly_respected() {
        let mut rng = SimRng::seed_from(31);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_rejects_zero() {
        SimRng::seed_from(0).next_below(0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::seed_from(13);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
