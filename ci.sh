#!/usr/bin/env bash
# Repository CI: build, test, format and lint gates.
#
# Mirrors what the hosted pipeline runs; keep the steps in sync with
# README.md's Testing section.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The conformance suites guard the chaos-off byte-identity contract, the
# fault-injection invariants, the anti-pattern lint/auto-fix contract, the
# fleet scale-out determinism cells, the streaming-vs-retained oracle
# differential, the snapshot-pool pressure invariants (lazy-restore
# oracle, budget bound, redeploy invalidation), the zygote-pool
# dependency-sharing contract (thread-count byte identity, v3 passthrough
# when disabled) and the eviction-order determinism property; run them by
# name so a test-harness filter or workspace reshuffle can never silently
# drop them from the gate.
echo "==> cargo test -q --test chaos_sweep --test golden_reports --test antipattern_lints" \
     "--test fleet_determinism --test fleet_streaming_equivalence --test snapshot_pressure" \
     "--test dependency_sharing --test snapshot_eviction_order"
cargo test -q --test chaos_sweep --test golden_reports --test antipattern_lints \
    --test fleet_determinism --test fleet_streaming_equivalence --test snapshot_pressure \
    --test dependency_sharing --test snapshot_eviction_order

# The catalog's five below-gate fixture apps must stay lint-clean at the
# warning level: `--deny warnings` exits 1 on any warning-or-worse
# diagnostic from the full 11-pass analyzer (core lints + the anti-pattern
# catalog).
echo "==> slimstart lint --deny warnings over the clean fixture apps"
for code in R-UL R-TN FWB-FLT FWB-JSN FL-HW; do
    cargo run --release --quiet --bin slimstart -- \
        lint "$code" --deny warnings --cold-starts 60 > /dev/null
done

# The hot-path bench harness must run end to end and emit well-formed JSON
# (the binary validates its own report before writing); --smoke keeps the
# iteration counts CI-sized. --check is the perf-regression gate: the run
# fails if any current path is more than 3x slower than its own in-run
# reference baseline, so the gate is immune to machine-speed differences.
# The gate also covers the snapshot_pressure sweep: the unlimited point
# must not evict, constrained budgets must, and the tightest budget must
# show a lower hit rate and no-better p99 cold start than unlimited.
# Since PR 10 the same run gates the dependency_sharing grid: combined
# sharing+deferral mean and p99 cold start must stay strictly below
# deferral-only, and the sharing cells must actually fork from zygotes.
echo "==> slimstart bench --smoke --check"
cargo run --release --quiet --bin slimstart -- bench --smoke --out target/bench-smoke.json --check

# Disabled tests rot: nothing under tests/ may be #[ignore]d.
echo "==> checking for #[ignore] in tests/"
if grep -rn "#\[ignore" tests/*.rs; then
    echo "error: #[ignore]d integration tests are not allowed" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
