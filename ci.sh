#!/usr/bin/env bash
# Repository CI: build, test, format and lint gates.
#
# Mirrors what the hosted pipeline runs; keep the steps in sync with
# README.md's Testing section.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI OK"
